//! Simulated time.
//!
//! The clock is an integer number of nanoseconds. Integer time makes event
//! ordering exact and runs reproducible: two events never compare "almost
//! equal", and accumulating many small MAC delays cannot drift the way `f64`
//! sums do.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0 && secs.is_finite(), "invalid time {secs}");
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Duration elapsed since `earlier` (saturating at zero).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0 && secs.is_finite(), "invalid duration {secs}");
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    #[inline]
    pub fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    #[inline]
    pub fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Airtime of `bytes` at `bits_per_sec` on the channel.
    #[inline]
    pub fn airtime(bytes: usize, bits_per_sec: u64) -> Self {
        debug_assert!(bits_per_sec > 0);
        let bits = bytes as u64 * 8;
        SimDuration(bits * NANOS_PER_SEC / bits_per_sec)
    }

    #[inline]
    pub fn mul_f64(self, f: f64) -> Self {
        debug_assert!(f >= 0.0 && f.is_finite());
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl diknn_snap::Snap for SimTime {
    fn snap(&self, w: &mut diknn_snap::SnapWriter) {
        w.put_u64(self.0);
    }
    fn unsnap(r: &mut diknn_snap::SnapReader<'_>) -> Result<Self, diknn_snap::SnapError> {
        Ok(SimTime(r.take_u64()?))
    }
}

impl diknn_snap::Snap for SimDuration {
    fn snap(&self, w: &mut diknn_snap::SnapWriter) {
        w.put_u64(self.0);
    }
    fn unsnap(r: &mut diknn_snap::SnapReader<'_>) -> Result<Self, diknn_snap::SnapError> {
        Ok(SimDuration(r.take_u64()?))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs_f64(2.0) + SimDuration::from_millis(250);
        assert!((t.as_secs_f64() - 2.25).abs() < 1e-12);
        let d = t - SimTime::from_secs_f64(2.0);
        assert_eq!(d, SimDuration::from_millis(250));
        // Saturating subtraction.
        assert_eq!(SimTime::ZERO - t, SimDuration::ZERO);
    }

    #[test]
    fn airtime_at_250kbps() {
        // 250 kbps, 125 bytes = 1000 bits -> 4 ms.
        let d = SimDuration::airtime(125, 250_000);
        assert_eq!(d, SimDuration::from_millis(4));
    }

    #[test]
    fn ordering_is_exact() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(11);
        assert!(a < b);
        assert_eq!(a + SimDuration::from_nanos(1), b);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10).mul_f64(2.5);
        assert_eq!(d, SimDuration::from_micros(25_000));
    }
}
