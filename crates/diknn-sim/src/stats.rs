//! Run-level counters maintained by the engine.

/// Counters accumulated over a simulation run.
///
/// These are engine-level facts (what the radio did); protocol-level metrics
/// such as query latency and accuracy are computed by the protocols and the
/// workload harness on top.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Completed transmissions (frames put on the air), including beacons.
    pub tx_frames: u64,
    /// Bytes put on the air (payload + headers), including beacons.
    pub tx_bytes: u64,
    /// Protocol (non-beacon) frames put on the air.
    pub tx_protocol_frames: u64,
    /// Successful frame receptions delivered to a protocol or table.
    pub rx_deliveries: u64,
    /// Receptions destroyed by overlapping transmissions.
    pub collisions: u64,
    /// Receptions dropped by the random loss process.
    pub random_losses: u64,
    /// Frames abandoned because the channel never went idle within the
    /// backoff budget.
    pub mac_drops: u64,
    /// Unicast transmissions that exhausted their ARQ retries.
    pub unicast_failures: u64,
    /// Link-layer retransmission attempts performed.
    pub arq_retries: u64,
    /// Beacon frames sent.
    pub beacons_sent: u64,
    /// Total events processed by the engine.
    pub events: u64,

    // ----- fault injection (see `crate::faults`) ------------------------
    /// Fail-stop crashes executed (scheduled + random; excludes energy
    /// deaths).
    pub nodes_crashed: u64,
    /// Crashed nodes that rebooted.
    pub nodes_recovered: u64,
    /// Nodes that died by exhausting their energy budget.
    pub energy_deaths: u64,
    /// Receptions dropped inside an active jamming zone.
    pub frames_jammed: u64,
    /// Receptions dropped by the Gilbert–Elliott bursty-loss chain.
    pub burst_losses: u64,
    /// Frames silently discarded because their sender was dead at
    /// transmission time.
    pub frames_dropped_dead: u64,
    /// Protocol timers that came due at a dead node and were suppressed.
    pub timers_suppressed: u64,
    /// Itinerary tokens re-issued by the token-loss watchdog
    /// (protocol-level; incremented via [`crate::Ctx::stats_mut`]).
    pub tokens_reissued: u64,
    /// Whole-query retries issued by a sink after a silent timeout
    /// (protocol-level).
    pub query_retries: u64,
    /// Events recorded by the flight recorder (see [`crate::trace`]);
    /// zero unless tracing is enabled.
    pub trace_events: u64,

    // ----- churn lifecycle (see `crate::faults::ChurnPlan`) -------------
    /// Churn departures executed (node left the network voluntarily).
    pub nodes_left: u64,
    /// Churned-out nodes that rejoined the network.
    pub nodes_rejoined: u64,

    // ----- per-event-kind breakdown (profiling; sums to `events`) -------
    /// MAC attempt events dispatched (initial, backoff, and ARQ attempts).
    pub ev_mac_attempt: u64,
    /// End-of-transmission (delivery fan-out) events dispatched.
    pub ev_tx_end: u64,
    /// Protocol timer events dispatched (fired, cancelled, or suppressed).
    pub ev_timer: u64,
    /// Beacon-slot events dispatched.
    pub ev_beacon: u64,
    /// Fault/churn lifecycle events dispatched (crash, recover, leave,
    /// rejoin).
    pub ev_lifecycle: u64,
}

diknn_snap::snap_struct!(SimStats {
    tx_frames,
    tx_bytes,
    tx_protocol_frames,
    rx_deliveries,
    collisions,
    random_losses,
    mac_drops,
    unicast_failures,
    arq_retries,
    beacons_sent,
    events,
    nodes_crashed,
    nodes_recovered,
    energy_deaths,
    frames_jammed,
    burst_losses,
    frames_dropped_dead,
    timers_suppressed,
    tokens_reissued,
    query_retries,
    trace_events,
    nodes_left,
    nodes_rejoined,
    ev_mac_attempt,
    ev_tx_end,
    ev_timer,
    ev_beacon,
    ev_lifecycle
});

/// Implementation-side performance counters, maintained alongside
/// [`SimStats`] but deliberately **not** part of it.
///
/// `SimStats` is a behavioural fingerprint: it is serialized into
/// snapshots and compared bit-for-bit across index variants (grid vs
/// brute force) and across snapshot/restore boundaries. The counters here
/// describe *how* the engine computed the run — cache hits, index
/// refreshes — which legitimately differ between variants (brute force
/// has no grid to refresh; a restored run starts with a cold cache). They
/// therefore live outside the snapshot stream and outside every
/// equivalence oracle, and reset to zero on restore.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PerfCounters {
    /// Audible-set queries answered from the per-node candidate cache.
    pub aud_cache_hits: u64,
    /// Audible-set queries that had to re-query the grid (cache cold,
    /// grid refreshed, or query window moved).
    pub aud_cache_misses: u64,
    /// Incremental spatial-grid refreshes performed by the run loop.
    pub grid_refreshes: u64,
    /// Transmission starts shipped to shard workers ahead of time
    /// (sharded run loop only; see `diknn_sim::shard`).
    pub precomp_planned: u64,
    /// Precomputed audible sets consumed with a current stamp.
    pub precomp_used: u64,
    /// Precomputed audible sets discarded because the grid epoch or
    /// alive version moved between planning and commit (recomputed
    /// inline — a cost, never a behaviour change).
    pub precomp_stale: u64,
    /// Transmission starts that reached commit with no precomputed set
    /// (frame scheduled and started inside one lookahead window).
    pub precomp_missed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = SimStats::default();
        assert_eq!(s.tx_frames, 0);
        assert_eq!(s.collisions, 0);
        assert_eq!(s, SimStats::default());
    }
}
