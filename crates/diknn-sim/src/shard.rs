//! Space-partitioned parallel execution of a single run (DESIGN.md §15).
//!
//! One simulation run is one totally-ordered event stream: every MAC
//! backoff, loss and jam draw comes from the single run RNG *at event
//! commit time*, in `(time, seq)` order. That global RNG stream is the
//! bit-identity contract every oracle in this repo pins, and it rules out
//! running shards as autonomous event loops — any per-shard RNG would
//! reorder draws and change every seeded outcome. What *can* leave the
//! commit thread is the run's dominant pure computation: the audible set
//! of a transmission (`fill_receivers`, ~40 % of run time per
//! PROFILING.md) is a deterministic function of the mobility plans, the
//! spatial grid at a given epoch, and the alive bitmap at a given
//! version. This module makes that function explicit and shippable:
//!
//! * [`AudibleWorld`] — an immutable, cheaply-cloneable snapshot of
//!   exactly the inputs the audible-set query reads (`Arc`s of the plans
//!   and grid, an alive bitmap, the radio range), stamped with the grid
//!   epoch and alive version it was taken at.
//! * [`WorkItem`] — one future transmission start `(at, handle, from)`,
//!   harvested from the engine's own schedule within a conservative
//!   lookahead window (header airtime + one backoff slot — the minimum
//!   delay between scheduling a MAC attempt and the attempt itself).
//! * [`ShardMap`] — the spatial partition: the field is cut into
//!   `shards` contiguous x-bands and a work item belongs to the band
//!   containing its sender's position. Totality and edge determinism
//!   (`x` exactly on a band boundary) are pinned by
//!   `tests/shard_seams.rs`.
//! * [`ShardExecutor`] — the engine-side abstraction over "compute these
//!   items, possibly on shard workers". The engine never touches
//!   `std::thread`; the only threaded implementation lives in the
//!   sanctioned `diknn-workloads::parallel` module (enforced by the
//!   `raw-thread` xtask lint).
//!
//! # Why bit-identity holds
//!
//! A precomputed receiver list is consumed only if its stamp still
//! matches the engine's `(grid epoch, alive version)` at commit time;
//! otherwise the commit thread recomputes inline. A valid stamp means
//! the worker read byte-for-byte the inputs the inline query would have
//! read, and [`AudibleWorld::compute`] mirrors the engine's query —
//! same candidate enumeration (row-major cells, sorted ids), the same
//! anchor triage with the same [`ANCHOR_EPS`], the same exact
//! `dist_sq <= range²` predicate. The audible-set *cache* needs no
//! mirroring: a cache hit is byte-identical to a fresh query over the
//! same (epoch, window) by construction, so serving a fresh result where
//! the sequential engine would have served a cached one changes nothing
//! but `PerfCounters` (which are outside every behavioural fingerprint).
//! All mutation — RNG draws, collision marking, energy, the trace —
//! stays on the commit thread in `(time, seq)` order, so thread
//! scheduling can change *when* a receiver list is computed, never what
//! it contains nor where its consumption lands in the event order.

use std::sync::Arc;

use diknn_geom::{Point, Rect};

use crate::engine::SharedMobility;
use crate::grid::SpatialGrid;
use crate::ids::NodeId;
use crate::time::SimTime;

/// Conservative margin (metres) for the anchor triage: anchor distances
/// within `range ± (drift + ANCHOR_EPS)` fall through to the exact
/// check. Shared by the engine's inline query and [`AudibleWorld`] so
/// the two paths classify identically by construction.
pub(crate) const ANCHOR_EPS: f64 = 1e-6;

/// One future transmission start the engine has already scheduled: the
/// MAC attempt for `handle` at time `at`, sent by `from`. Ordered by
/// `(at, handle)` — the same `(time, tie-break-id)` order the engine
/// merges results back in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct WorkItem {
    /// When the MAC attempt fires (the time the audible set is taken at).
    pub at: SimTime,
    /// Frame handle — the tie-break id for deterministic merging.
    pub handle: crate::queue::Handle,
    /// Sending node.
    pub from: NodeId,
}

/// The audible set computed for one [`WorkItem`].
#[derive(Debug, Clone)]
pub struct ShardResult {
    /// The item this answers.
    pub item: WorkItem,
    /// Nodes within radio range of the sender at `item.at`, ascending by
    /// id — exactly what the engine's inline query would produce from
    /// the same world snapshot.
    pub receivers: Vec<NodeId>,
}

/// Immutable snapshot of every input the audible-set query reads,
/// stamped with the versions it was taken at. Cloning is cheap (`Arc`
/// bumps); the snapshot is `Send + Sync` so shard workers can hold it
/// across thread boundaries.
#[derive(Clone)]
pub struct AudibleWorld {
    mobility: Arc<Vec<SharedMobility>>,
    grid: Option<Arc<SpatialGrid>>,
    alive: Arc<Vec<bool>>,
    field: Rect,
    radio_range: f64,
    grid_epoch: u64,
    alive_ver: u64,
}

impl std::fmt::Debug for AudibleWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AudibleWorld")
            .field("nodes", &self.mobility.len())
            .field("grid", &self.grid.is_some())
            .field("field", &self.field)
            .field("radio_range", &self.radio_range)
            .field("grid_epoch", &self.grid_epoch)
            .field("alive_ver", &self.alive_ver)
            .finish()
    }
}

impl AudibleWorld {
    /// Snapshot a world. `grid_epoch`/`alive_ver` must be the engine's
    /// current versions — they gate precomputed-result consumption.
    pub fn new(
        mobility: Arc<Vec<SharedMobility>>,
        grid: Option<Arc<SpatialGrid>>,
        alive: Arc<Vec<bool>>,
        field: Rect,
        radio_range: f64,
        alive_ver: u64,
    ) -> Self {
        let grid_epoch = grid.as_ref().map_or(0, |g| g.epoch());
        AudibleWorld {
            mobility,
            grid,
            alive,
            field,
            radio_range,
            grid_epoch,
            alive_ver,
        }
    }

    /// The `(grid epoch, alive version)` stamp results computed from this
    /// snapshot carry.
    #[inline]
    pub fn stamp(&self) -> (u64, u64) {
        (self.grid_epoch, self.alive_ver)
    }

    /// The simulation field (drives the [`ShardMap`] partition).
    #[inline]
    pub fn field(&self) -> Rect {
        self.field
    }

    /// Exact position of `node` at time `at` under its mobility plan.
    #[inline]
    pub fn position(&self, node: NodeId, at: SimTime) -> Point {
        self.mobility[node.index()].position_at(at.as_secs_f64())
    }

    /// Append to `out` (which must be empty) the nodes within radio range
    /// of `item.from` at `item.at`, ascending by id — the pure core of
    /// the engine's `fill_receivers`, computed against this snapshot.
    pub fn compute(&self, item: &WorkItem, out: &mut Vec<NodeId>) {
        debug_assert!(out.is_empty());
        let t = item.at.as_secs_f64();
        let fi = item.from.index();
        let origin = self.mobility[fi].position_at(t);
        let range2 = self.radio_range * self.radio_range;
        let Some(grid) = self.grid.as_deref() else {
            for i in 0..self.mobility.len() {
                if i != fi
                    && self.alive[i]
                    && origin.dist_sq(self.mobility[i].position_at(t)) <= range2
                {
                    out.push(NodeId(i as u32));
                }
            }
            return;
        };
        let window = grid.cover_cells(origin, self.radio_range, item.at);
        let mut cand = Vec::new();
        grid.collect_cells(window, &mut cand);
        cand.sort_unstable();
        // Anchor triage, mirroring the engine's inline query: candidates
        // whose bucketed position is outside `range ± (drift + ε)` are
        // classified without touching the mobility plan; the ambiguity
        // band pays the exact check. Both paths share `ANCHOR_EPS`, so a
        // triage answer here always equals the inline answer.
        let drift = grid.drift_bound(item.at);
        let far = self.radio_range + drift + ANCHOR_EPS;
        let far_sq = far * far;
        let near = self.radio_range - drift - ANCHOR_EPS;
        let near_sq = if near > 0.0 { near * near } else { -1.0 };
        let anchors = grid.anchors();
        for &i in &cand {
            let ix = i as usize;
            if ix == fi || !self.alive[ix] {
                continue;
            }
            let d0 = origin.dist_sq(anchors[ix]);
            if d0 > far_sq {
                continue;
            }
            if d0 > near_sq && origin.dist_sq(self.mobility[ix].position_at(t)) > range2 {
                continue;
            }
            out.push(NodeId(i));
        }
    }
}

/// The spatial partition: `shards` contiguous, equal-width x-bands over
/// the field. A point belongs to exactly one band; positions outside the
/// field clamp into the edge bands (mirroring [`SpatialGrid`]'s
/// clamping, so shard ownership and grid membership never disagree about
/// out-of-field drifters).
#[derive(Debug, Clone, Copy)]
pub struct ShardMap {
    min_x: f64,
    band: f64,
    shards: usize,
}

impl ShardMap {
    /// Partition `field` into `shards` x-bands (clamped to ≥ 1).
    pub fn new(field: Rect, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardMap {
            min_x: field.min_x,
            band: (field.width() / shards as f64).max(f64::MIN_POSITIVE),
            shards,
        }
    }

    /// Number of bands.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The band owning `p` — total and deterministic: a pure function of
    /// the bits of `p.x`. A point exactly on a band boundary belongs to
    /// the upper band (like [`SpatialGrid`] cell edges); the last band
    /// also owns everything at or beyond the field's max edge.
    #[inline]
    pub fn shard_of(&self, p: Point) -> usize {
        let b = ((p.x - self.min_x) / self.band).floor();
        if b <= 0.0 {
            0
        } else {
            (b as usize).min(self.shards - 1)
        }
    }
}

/// Engine-side abstraction over "compute the audible sets of these
/// items". Implementations must return one [`ShardResult`] per submitted
/// item whose `receivers` equal [`AudibleWorld::compute`] for that item
/// (any result order — the engine merges by `(at, handle)`). The
/// threaded implementation (`ShardPool`) lives in
/// `diknn-workloads::parallel`, the only module allowed to spawn
/// threads; this crate provides the thread-free [`InlineExecutor`].
pub trait ShardExecutor {
    /// Compute every item against `world`.
    fn compute_batch(&mut self, world: &AudibleWorld, items: Vec<WorkItem>) -> Vec<ShardResult>;
}

/// The trivial executor: computes every item on the calling thread.
/// The 1-shard baseline and the reference implementation threaded
/// executors are tested against.
#[derive(Debug, Default, Clone, Copy)]
pub struct InlineExecutor;

impl ShardExecutor for InlineExecutor {
    fn compute_batch(&mut self, world: &AudibleWorld, items: Vec<WorkItem>) -> Vec<ShardResult> {
        items
            .into_iter()
            .map(|item| {
                let mut receivers = Vec::new();
                world.compute(&item, &mut receivers);
                ShardResult { item, receivers }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_is_total_and_contiguous() {
        let field = Rect::new(0.0, 0.0, 100.0, 100.0);
        let map = ShardMap::new(field, 4);
        assert_eq!(map.shards(), 4);
        assert_eq!(map.shard_of(Point::new(0.0, 50.0)), 0);
        assert_eq!(map.shard_of(Point::new(24.999, 1.0)), 0);
        // Exactly on a boundary → upper band, deterministically.
        assert_eq!(map.shard_of(Point::new(25.0, 1.0)), 1);
        assert_eq!(map.shard_of(Point::new(99.999, 1.0)), 3);
        // The max edge and beyond clamp into the last band.
        assert_eq!(map.shard_of(Point::new(100.0, 1.0)), 3);
        assert_eq!(map.shard_of(Point::new(1e9, 1.0)), 3);
        assert_eq!(map.shard_of(Point::new(-5.0, 1.0)), 0);
    }

    #[test]
    fn degenerate_shard_counts_clamp() {
        let field = Rect::new(0.0, 0.0, 100.0, 100.0);
        assert_eq!(ShardMap::new(field, 0).shards(), 1);
        assert_eq!(ShardMap::new(field, 1).shard_of(Point::new(99.0, 0.0)), 0);
        // A zero-width field still yields a total map.
        let thin = ShardMap::new(Rect::new(5.0, 0.0, 5.0, 10.0), 3);
        assert_eq!(thin.shard_of(Point::new(5.0, 1.0)), 0);
    }
}
