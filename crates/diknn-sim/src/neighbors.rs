//! Beacon-maintained neighbour tables.
//!
//! "Every sensor node maintains a table enrolling IDs and locations of
//! neighbor nodes falling within its radio range" (§3.1). Entries are what
//! the node *heard*, not ground truth: under mobility a table entry can be
//! stale by up to the beacon interval, which is precisely the effect that
//! degrades the fixed-infrastructure baselines.

use crate::ids::NodeId;
use crate::time::SimTime;
use diknn_geom::Point;

/// What one node knows about one neighbour, from its last beacon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    pub id: NodeId,
    /// Position advertised in the last heard beacon.
    pub position: Point,
    /// Speed advertised in the last heard beacon (m/s); DIKNN's mobility
    /// assurance tracks the fastest speed seen (§4.3).
    pub speed: f64,
    /// When the beacon was heard.
    pub heard_at: SimTime,
}

/// A node's neighbour table.
///
/// Storage is two parallel vectors: `ids[i] == entries[i].id` always. The
/// id column exists purely so the per-beacon upsert scan in
/// [`NeighborTable::record`] walks a dense 4-byte-per-entry array (one or
/// two cache lines at typical node degrees) instead of striding across
/// full 40-byte [`Neighbor`] records — `record` runs once per receiver per
/// beacon, which makes it the single hottest write in the simulator.
/// Entries keep strict insertion order; observable behaviour is identical
/// to a plain `Vec<Neighbor>` scan.
#[derive(Debug, Clone, Default)]
pub struct NeighborTable {
    ids: Vec<NodeId>,
    entries: Vec<Neighbor>,
}

impl NeighborTable {
    /// Record a heard beacon, replacing any previous entry for the sender.
    pub fn record(&mut self, n: Neighbor) {
        match self.ids.iter().position(|&id| id == n.id) {
            Some(i) => self.entries[i] = n,
            None => {
                self.ids.push(n.id);
                self.entries.push(n);
            }
        }
    }

    /// Drop entries heard at or before `cutoff`; called lazily on reads.
    pub fn expire(&mut self, cutoff: SimTime) {
        self.retain_in_place(|e| e.heard_at > cutoff);
    }

    /// Current (non-expired) entries, in insertion order.
    pub fn entries(&self) -> &[Neighbor] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, id: NodeId) -> Option<&Neighbor> {
        self.ids
            .iter()
            .position(|&i| i == id)
            .map(|i| &self.entries[i])
    }

    pub fn remove(&mut self, id: NodeId) {
        self.retain_in_place(|e| e.id != id);
    }

    pub fn clear(&mut self) {
        self.ids.clear();
        self.entries.clear();
    }

    /// `retain` over both columns in lockstep, preserving order.
    fn retain_in_place<F: Fn(&Neighbor) -> bool>(&mut self, keep: F) {
        let mut w = 0;
        for i in 0..self.entries.len() {
            if keep(&self.entries[i]) {
                if w != i {
                    self.entries[w] = self.entries[i];
                    self.ids[w] = self.ids[i];
                }
                w += 1;
            }
        }
        self.entries.truncate(w);
        self.ids.truncate(w);
    }
}

diknn_snap::snap_struct!(Neighbor {
    id,
    position,
    speed,
    heard_at
});

// Wire format: the entry list only (byte-identical to the former
// single-vector layout); the id column is derived state and is rebuilt on
// decode.
impl diknn_snap::Snap for NeighborTable {
    fn snap(&self, w: &mut diknn_snap::SnapWriter) {
        diknn_snap::Snap::snap(&self.entries, w);
    }
    fn unsnap(r: &mut diknn_snap::SnapReader<'_>) -> Result<Self, diknn_snap::SnapError> {
        let entries: Vec<Neighbor> = diknn_snap::Snap::unsnap(r)?;
        let ids = entries.iter().map(|e| e.id).collect();
        Ok(NeighborTable { ids, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(id: u32, x: f64, t: f64) -> Neighbor {
        Neighbor {
            id: NodeId(id),
            position: Point::new(x, 0.0),
            speed: 1.0,
            heard_at: SimTime::from_secs_f64(t),
        }
    }

    #[test]
    fn record_replaces_same_id() {
        let mut t = NeighborTable::default();
        t.record(nb(1, 0.0, 0.0));
        t.record(nb(2, 5.0, 0.0));
        t.record(nb(1, 3.0, 1.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(NodeId(1)).unwrap().position, Point::new(3.0, 0.0));
    }

    #[test]
    fn expire_drops_stale_entries() {
        let mut t = NeighborTable::default();
        t.record(nb(1, 0.0, 0.0));
        t.record(nb(2, 0.0, 2.0));
        t.expire(SimTime::from_secs_f64(1.0));
        assert_eq!(t.len(), 1);
        assert!(t.get(NodeId(2)).is_some());
    }

    #[test]
    fn remove_and_clear() {
        let mut t = NeighborTable::default();
        t.record(nb(1, 0.0, 0.0));
        t.record(nb(2, 0.0, 0.0));
        t.remove(NodeId(1));
        assert!(t.get(NodeId(1)).is_none());
        t.clear();
        assert!(t.is_empty());
    }
}
