//! Struct-of-arrays per-node engine state and the dense flow-energy ledger.
//!
//! The engine's hot paths address nodes by dense `NodeId` index thousands
//! of times per simulated second. Keeping each per-node fact in its own
//! flat column ([`NodeSoA`]) means carrier sense, liveness checks, and
//! lifecycle updates are single indexed loads with no map traversal, and
//! the columns the MAC touches every event (`tx_count`, `rx_cover`,
//! `alive`) stay dense in cache.
//!
//! [`FlowLedger`] replaces the old `BTreeMap<u32, f64>` per-flow energy
//! table: flow labels are small dense query ids in practice, so a `Vec`
//! indexed by label is both faster and still deterministic (iteration is
//! ascending by label, exactly the order the map gave).

use diknn_snap::{Snap, SnapError, SnapReader, SnapWriter};

use crate::lifecycle::NodePhase;

/// Per-node engine state, one column per fact, indexed by dense node id.
///
/// The busy-tracking columns (`tx_count`, `rx_cover`) are *derived* from
/// the active-transmission list but maintained incrementally so carrier
/// sense is O(1) instead of a scan over every frame on the air:
///
/// * `tx_count[i]` — number of active transmissions with sender `i`
///   (0 or 1 in practice: a transmitting node senses the channel busy).
/// * `rx_cover[i]` — number of active transmissions that counted `i` among
///   their receivers at transmission start.
///
/// Both are incremented when a transmission starts and decremented when it
/// ends (including the dead-sender path), so `tx_count[i] > 0 ||
/// rx_cover[i] > 0` is exactly the old "some active tx has `i` as sender
/// or receiver" scan.
#[derive(Debug, Clone)]
pub struct NodeSoA {
    /// Liveness (fault plan); dead nodes neither tx nor rx.
    pub alive: Vec<bool>,
    /// Lifecycle phase, kept in lockstep with `alive` (the hot path reads
    /// the bitmap, lifecycle-aware callers read this).
    pub phase: Vec<NodePhase>,
    /// Per-receiver Gilbert–Elliott channel state (true = Bad).
    pub ge_bad: Vec<bool>,
    /// Active transmissions sent by this node (carrier-sense column).
    pub tx_count: Vec<u32>,
    /// Active transmissions covering this node as a receiver.
    pub rx_cover: Vec<u32>,
}

impl NodeSoA {
    pub fn new(n: usize) -> Self {
        NodeSoA {
            alive: vec![true; n],
            phase: vec![NodePhase::Up; n],
            ge_bad: vec![false; n],
            tx_count: vec![0; n],
            rx_cover: vec![0; n],
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }
}

// Column order is part of the snapshot wire format (SNAP_VERSION ≥ 2);
// changing it requires a version bump.
diknn_snap::snap_struct!(NodeSoA {
    alive,
    phase,
    ge_bad,
    tx_count,
    rx_cover
});

/// Per-flow protocol energy in joules, indexed by flow label.
///
/// Flow labels are the query ids protocols pass to
/// [`crate::Ctx::unicast_flow`]/[`crate::Ctx::broadcast_flow`] — small and
/// dense — so the ledger is a flat `Vec<f64>` grown on demand. Absent
/// labels read as `0.0`, matching the old `BTreeMap` miss, and
/// [`FlowLedger::iter`] visits charged flows ascending by label, matching
/// the old map order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowLedger {
    joules: Vec<f64>,
}

impl FlowLedger {
    pub fn new() -> Self {
        FlowLedger::default()
    }

    /// Joules attributed to `flow` so far (0.0 if never charged).
    #[inline]
    pub fn get(&self, flow: u32) -> f64 {
        self.joules.get(flow as usize).copied().unwrap_or(0.0)
    }

    /// Add `j` joules to `flow`, growing the table if needed.
    #[inline]
    pub fn charge(&mut self, flow: u32, j: f64) {
        let i = flow as usize;
        if self.joules.len() <= i {
            self.joules.resize(i + 1, 0.0);
        }
        self.joules[i] += j;
    }

    /// Sum over all flows.
    pub fn total(&self) -> f64 {
        self.joules.iter().sum()
    }

    /// `(flow, joules)` for every flow with a non-zero charge, ascending
    /// by flow label.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.joules
            .iter()
            .enumerate()
            .filter(|&(_, &j)| j != 0.0)
            .map(|(i, &j)| (i as u32, j))
    }

    /// Number of flows ever charged (table extent, not non-zero count).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.joules.len()
    }
}

impl Snap for FlowLedger {
    fn snap(&self, w: &mut SnapWriter) {
        self.joules.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FlowLedger {
            joules: Vec::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soa_columns_start_uniform() {
        let s = NodeSoA::new(3);
        assert_eq!(s.len(), 3);
        assert!(s.alive.iter().all(|&a| a));
        assert!(s.phase.iter().all(|&p| p == NodePhase::Up));
        assert!(s.tx_count.iter().all(|&c| c == 0));
        assert!(s.rx_cover.iter().all(|&c| c == 0));
    }

    #[test]
    fn ledger_grows_sums_and_iterates_ascending() {
        let mut l = FlowLedger::new();
        assert_eq!(l.get(7), 0.0);
        l.charge(7, 1.5);
        l.charge(2, 0.25);
        l.charge(7, 0.5);
        assert_eq!(l.get(7), 2.0);
        assert_eq!(l.get(2), 0.25);
        assert_eq!(l.get(3), 0.0);
        assert_eq!(l.total(), 2.25);
        let flows: Vec<(u32, f64)> = l.iter().collect();
        assert_eq!(flows, vec![(2, 0.25), (7, 2.0)]);
    }

    #[test]
    fn ledger_snapshot_roundtrip() {
        let mut l = FlowLedger::new();
        l.charge(0, 0.125);
        l.charge(5, 3.5);
        let mut w = SnapWriter::new();
        l.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = FlowLedger::unsnap(&mut r).expect("unsnap");
        r.finish().expect("consumed");
        assert_eq!(back, l);
    }
}
