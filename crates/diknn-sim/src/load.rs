//! Deterministic serving-load signal.
//!
//! The sink-side admission controller (`diknn-core`'s serving layer) needs
//! to know *how loaded the engine is right now* to decide whether a newly
//! arrived query may start. Wall-clock load averages would break run
//! determinism, so the signal is computed purely from simulation events:
//!
//! * **queue depth** — how many admitted queries are currently in flight
//!   (admitted but not yet terminal), and
//! * **recent completion rate** — terminal events per second over a sliding
//!   window of simulated time.
//!
//! Both feed [`LoadSignal::retry_after`], the bounded backoff quoted to a
//! deferred query: when the engine is draining, the backoff approximates the
//! time for one in-flight slot to free up; when it is stalled, the backoff
//! grows linearly with depth up to a hard cap. No randomness is involved —
//! the same trace of admit/complete calls yields the same signal bit for
//! bit, which is what lets `ParallelSweep` reruns stay identical.

use std::collections::VecDeque;

use crate::time::SimTime;

/// Sliding-window load signal: queue depth + recent completion rate.
#[derive(Debug, Clone)]
pub struct LoadSignal {
    /// Admitted-but-not-terminal queries.
    in_flight: u32,
    /// Sliding window (seconds of simulated time) over which completions
    /// count toward the rate.
    window_s: f64,
    /// Completion timestamps inside (or near) the current window, oldest
    /// first. Pruned on every mutation.
    completions: VecDeque<SimTime>,
}

diknn_snap::snap_struct!(LoadSignal {
    in_flight,
    window_s,
    completions
});

impl LoadSignal {
    /// A signal with the given completion-rate window (seconds, must be
    /// positive).
    pub fn new(window_s: f64) -> Self {
        assert!(
            window_s > 0.0 && window_s.is_finite(),
            "load-signal window must be positive"
        );
        LoadSignal {
            in_flight: 0,
            window_s,
            completions: VecDeque::new(),
        }
    }

    /// Number of admitted queries that have not reached a terminal status.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.in_flight
    }

    /// Record an admission at `now`.
    pub fn admit(&mut self, now: SimTime) {
        self.in_flight += 1;
        self.prune(now);
    }

    /// Record a terminal outcome for a previously admitted query at `now`.
    pub fn complete(&mut self, now: SimTime) {
        debug_assert!(self.in_flight > 0, "complete without matching admit");
        self.in_flight = self.in_flight.saturating_sub(1);
        self.completions.push_back(now);
        self.prune(now);
    }

    /// Terminal outcomes per second of simulated time over the window
    /// ending at `now`.
    pub fn completion_rate(&self, now: SimTime) -> f64 {
        let cutoff = now.as_secs_f64() - self.window_s;
        let recent = self
            .completions
            .iter()
            .filter(|t| t.as_secs_f64() >= cutoff)
            .count();
        recent as f64 / self.window_s
    }

    /// Bounded retry-after quote (seconds) for a query deferred at `now`.
    ///
    /// If the engine is observably draining, quote the time for one
    /// in-flight slot to free at the observed rate; otherwise fall back to
    /// a depth-proportional penalty. Always within `[base_s, max_s]`.
    pub fn retry_after(&self, now: SimTime, base_s: f64, max_s: f64) -> f64 {
        debug_assert!(base_s > 0.0 && max_s >= base_s);
        let rate = self.completion_rate(now);
        let quote = if rate > 0.0 {
            self.in_flight as f64 / rate
        } else {
            base_s * (1 + self.in_flight) as f64
        };
        quote.clamp(base_s, max_s)
    }

    fn prune(&mut self, now: SimTime) {
        let cutoff = now.as_secs_f64() - self.window_s;
        while let Some(t) = self.completions.front() {
            if t.as_secs_f64() < cutoff {
                self.completions.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn depth_tracks_admit_and_complete() {
        let mut ls = LoadSignal::new(5.0);
        assert_eq!(ls.depth(), 0);
        ls.admit(at(1.0));
        ls.admit(at(1.5));
        assert_eq!(ls.depth(), 2);
        ls.complete(at(2.0));
        assert_eq!(ls.depth(), 1);
    }

    #[test]
    fn completion_rate_uses_sliding_window() {
        let mut ls = LoadSignal::new(2.0);
        for i in 0..4 {
            ls.admit(at(i as f64));
            ls.complete(at(i as f64 + 0.5));
        }
        // Completions at 0.5, 1.5, 2.5, 3.5; window [1.5, 3.5] holds 3.
        assert_eq!(ls.completion_rate(at(3.5)), 1.5);
        // Far in the future the window is empty.
        assert_eq!(ls.completion_rate(at(100.0)), 0.0);
    }

    #[test]
    fn retry_after_is_bounded_and_depth_sensitive() {
        let mut ls = LoadSignal::new(5.0);
        // Stalled engine: depth-proportional, never below base or above max.
        ls.admit(at(0.0));
        ls.admit(at(0.0));
        let q2 = ls.retry_after(at(1.0), 0.5, 4.0);
        assert_eq!(q2, 1.5); // 0.5 * (1 + 2)
        for _ in 0..20 {
            ls.admit(at(1.0));
        }
        assert_eq!(ls.retry_after(at(1.0), 0.5, 4.0), 4.0); // capped
                                                            // Draining engine: quote one slot-drain time at the observed rate.
        let mut ls = LoadSignal::new(2.0);
        for i in 0..5 {
            ls.admit(at(0.0));
            if i < 4 {
                ls.complete(at(1.0));
            }
        }
        // rate = 4 completions / 2 s = 2/s, depth 1 -> 0.5 s.
        assert_eq!(ls.retry_after(at(1.0), 0.1, 4.0), 0.5);
    }

    #[test]
    fn signal_is_deterministic_under_replay() {
        let run = |ls: &mut LoadSignal| {
            for i in 0..10 {
                ls.admit(at(i as f64 * 0.3));
                if i % 2 == 0 {
                    ls.complete(at(i as f64 * 0.3 + 0.2));
                }
            }
            (
                ls.depth(),
                ls.completion_rate(at(3.0)),
                ls.retry_after(at(3.0), 0.25, 8.0),
            )
        };
        let mut a = LoadSignal::new(4.0);
        let mut b = LoadSignal::new(4.0);
        assert_eq!(run(&mut a), run(&mut b));
    }
}
