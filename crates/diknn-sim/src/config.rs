//! Simulator configuration.

use crate::time::SimDuration;
use diknn_geom::Rect;

/// MAC behaviour modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacMode {
    /// CSMA/CA-like contention: carrier sense, random backoff, collisions
    /// destroy overlapping receptions. This is the paper's default
    /// environment (802.11 MAC at 250 kbps, RTS/CTS disabled).
    Contention,
    /// An idealised Contention Free Period (LR-WPAN CFP, §3.3): carrier
    /// sense still serialises the medium but receptions are never corrupted.
    /// Used by ablations to isolate collision effects.
    ContentionFree,
}

/// All physical/MAC/beacon parameters of a run.
///
/// Defaults reproduce the settings table of §5.1: 115×115 m² field, 20 m
/// radio range, 250 kbps channel, RTS/CTS off, 0.5 s beacons.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulation field boundary.
    pub field: Rect,
    /// Radio range `r` in metres (unit-disc model).
    pub radio_range: f64,
    /// Channel rate in bits/s.
    pub bits_per_sec: u64,
    /// Bytes of PHY+MAC framing added to every packet's payload size.
    pub header_bytes: usize,
    /// MAC mode (contention vs. contention-free).
    pub mac: MacMode,
    /// Maximum number of MAC (re)transmission attempts when the channel is
    /// busy before the packet is dropped.
    pub max_backoffs: u32,
    /// Base backoff window; the n-th retry waits uniform(0, window·2ⁿ).
    pub backoff_window: SimDuration,
    /// Link-layer (ARQ) retransmissions for unicast frames whose addressee
    /// did not receive them; models the 802.11 retry behaviour.
    pub unicast_retries: u32,
    /// Uniform random per-reception packet loss probability in `[0, 1)`,
    /// applied on top of collisions (models fading/interference the unit
    /// disc cannot).
    pub loss_rate: f64,
    /// Interval between neighbour beacons (0.5 s in the paper). A zero
    /// duration disables beaconing (neighbor tables stay empty unless the
    /// oracle mode below is used).
    pub beacon_interval: SimDuration,
    /// Beacon payload size in bytes (id + position + speed).
    pub beacon_bytes: usize,
    /// Neighbour entries older than this are ignored; defaults to 2.2×
    /// the beacon interval so one lost beacon does not evict a neighbour.
    pub neighbor_timeout: SimDuration,
    /// If true, neighbour tables are fed directly from the mobility oracle
    /// (perfect, instantaneous neighbourhood knowledge, no beacon traffic).
    /// Used by unit tests and by ablations that want to isolate protocol
    /// behaviour from beacon staleness.
    pub oracle_neighbors: bool,
    /// Transmit power draw in watts (energy = power × airtime).
    pub tx_power_w: f64,
    /// Receive power draw in watts; every audible node pays reception
    /// energy (overhearing is how itinerary probes reach D-nodes).
    pub rx_power_w: f64,
    /// Hard stop: no event later than this is processed.
    pub time_limit: SimDuration,
}

impl Default for SimConfig {
    fn default() -> Self {
        let beacon_interval = SimDuration::from_millis(500);
        SimConfig {
            field: Rect::new(0.0, 0.0, 115.0, 115.0),
            radio_range: 20.0,
            bits_per_sec: 250_000,
            header_bytes: 16,
            mac: MacMode::Contention,
            max_backoffs: 6,
            backoff_window: SimDuration::from_micros(640),
            unicast_retries: 3,
            loss_rate: 0.0,
            beacon_interval,
            beacon_bytes: 20,
            neighbor_timeout: beacon_interval.mul_f64(2.2),
            oracle_neighbors: false,
            tx_power_w: 0.0522,
            rx_power_w: 0.0564,
            time_limit: SimDuration::from_secs_f64(100.0),
        }
    }
}

impl SimConfig {
    /// Airtime of a protocol packet carrying `payload_bytes`.
    #[inline]
    pub fn packet_airtime(&self, payload_bytes: usize) -> SimDuration {
        SimDuration::airtime(self.header_bytes + payload_bytes, self.bits_per_sec)
    }

    /// Validate invariants; panics with a clear message on nonsense values.
    pub fn validate(&self) {
        assert!(!self.field.is_empty(), "empty simulation field");
        assert!(self.radio_range > 0.0, "radio range must be positive");
        assert!(self.bits_per_sec > 0, "channel rate must be positive");
        assert!(
            (0.0..1.0).contains(&self.loss_rate),
            "loss rate must be in [0, 1)"
        );
        assert!(self.tx_power_w >= 0.0 && self.rx_power_w >= 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = SimConfig::default();
        assert_eq!(c.field, Rect::new(0.0, 0.0, 115.0, 115.0));
        assert_eq!(c.radio_range, 20.0);
        assert_eq!(c.bits_per_sec, 250_000);
        assert_eq!(c.beacon_interval, SimDuration::from_millis(500));
        assert_eq!(c.mac, MacMode::Contention);
        c.validate();
    }

    #[test]
    fn airtime_includes_header() {
        let c = SimConfig::default();
        // (16 + 109) bytes = 1000 bits at 250 kbps -> 4 ms.
        assert_eq!(c.packet_airtime(109), SimDuration::from_millis(4));
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn validate_rejects_bad_loss_rate() {
        let c = SimConfig {
            loss_rate: 1.5,
            ..SimConfig::default()
        };
        c.validate();
    }
}
