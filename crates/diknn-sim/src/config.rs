//! Simulator configuration.

use std::fmt;

use crate::faults::FaultPlan;
use crate::time::SimDuration;
use crate::trace::TraceConfig;
use diknn_geom::Rect;

/// How the engine answers "which nodes are within radio range?".
///
/// Both answers are bit-identical by construction (the grid is a
/// candidate superset, exact-checked with the same predicate and sorted
/// the same way — see `crate::grid`); only the cost differs. The brute
/// scan is kept as the test oracle the grid is proptested against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NeighborIndex {
    /// Bucketed spatial grid, cell size = radio range: O(degree) per
    /// query. The default.
    #[default]
    Grid,
    /// Full O(n) scan over all mobility plans per query. Test oracle.
    BruteForce,
}

/// MAC behaviour modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacMode {
    /// CSMA/CA-like contention: carrier sense, random backoff, collisions
    /// destroy overlapping receptions. This is the paper's default
    /// environment (802.11 MAC at 250 kbps, RTS/CTS disabled).
    Contention,
    /// An idealised Contention Free Period (LR-WPAN CFP, §3.3): carrier
    /// sense still serialises the medium but receptions are never corrupted.
    /// Used by ablations to isolate collision effects.
    ContentionFree,
}

/// A configuration invariant violation found by [`SimConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The simulation field rectangle is empty.
    EmptyField,
    /// The radio range is not positive.
    NonPositiveRadioRange(f64),
    /// The channel rate is zero.
    ZeroChannelRate,
    /// `loss_rate` outside `[0, 1)`.
    LossRateOutOfRange(f64),
    /// A power draw is negative.
    NegativePower { tx_power_w: f64, rx_power_w: f64 },
    /// `max_backoffs` is zero: no frame could ever be transmitted under
    /// contention.
    ZeroMaxBackoffs,
    /// `time_limit` is zero: the run would end before `on_start`.
    ZeroTimeLimit,
    /// Beaconing is enabled but `neighbor_timeout <= beacon_interval`:
    /// every neighbour entry would expire before it can be refreshed,
    /// leaving tables permanently empty.
    NeighborTimeoutTooShort {
        neighbor_timeout: SimDuration,
        beacon_interval: SimDuration,
    },
    /// A fault-plan parameter is out of range (message explains which).
    Fault(String),
    /// The flight recorder is enabled with a zero-capacity ring buffer:
    /// every event would be evicted the moment it is recorded.
    ZeroTraceCapacity,
    /// A query arrival rate is not positive: the arrival process would
    /// never produce a query (or would divide by zero computing gaps).
    NonPositiveQueryRate(f64),
    /// The serving layer's result cache is enabled with a zero or negative
    /// TTL: every entry would be stale the moment it is written.
    NonPositiveCacheTtl(f64),
    /// The serving layer's spatial merge radius is negative (zero disables
    /// merging; negative is meaningless).
    NegativeMergeRadius(f64),
    /// The admission controller's concurrency ceiling is zero: no query
    /// could ever be admitted.
    ZeroAdmissionCeiling,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyField => write!(f, "empty simulation field"),
            ConfigError::NonPositiveRadioRange(r) => {
                write!(f, "radio range must be positive, got {r}")
            }
            ConfigError::ZeroChannelRate => write!(f, "channel rate must be positive"),
            ConfigError::LossRateOutOfRange(l) => {
                write!(f, "loss rate must be in [0, 1), got {l}")
            }
            ConfigError::NegativePower {
                tx_power_w,
                rx_power_w,
            } => write!(
                f,
                "power draws must be non-negative, got tx={tx_power_w} rx={rx_power_w}"
            ),
            ConfigError::ZeroMaxBackoffs => {
                write!(f, "max_backoffs must be nonzero (no frame could ever send)")
            }
            ConfigError::ZeroTimeLimit => write!(f, "time_limit must be nonzero"),
            ConfigError::NeighborTimeoutTooShort {
                neighbor_timeout,
                beacon_interval,
            } => write!(
                f,
                "neighbor_timeout ({neighbor_timeout}) must exceed beacon_interval \
                 ({beacon_interval}) or tables can never retain an entry"
            ),
            ConfigError::Fault(msg) => write!(f, "fault plan: {msg}"),
            ConfigError::ZeroTraceCapacity => {
                write!(f, "trace capacity must be nonzero when tracing is enabled")
            }
            ConfigError::NonPositiveQueryRate(r) => {
                write!(f, "query arrival rate must be positive, got {r}")
            }
            ConfigError::NonPositiveCacheTtl(ttl) => {
                write!(
                    f,
                    "cache TTL must be positive when caching is enabled, got {ttl}"
                )
            }
            ConfigError::NegativeMergeRadius(r) => {
                write!(f, "merge radius must be non-negative, got {r}")
            }
            ConfigError::ZeroAdmissionCeiling => {
                write!(
                    f,
                    "admission ceiling must be nonzero (no query could be admitted)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// All physical/MAC/beacon parameters of a run.
///
/// Defaults reproduce the settings table of §5.1: 115×115 m² field, 20 m
/// radio range, 250 kbps channel, RTS/CTS off, 0.5 s beacons.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulation field boundary.
    pub field: Rect,
    /// Radio range `r` in metres (unit-disc model).
    pub radio_range: f64,
    /// Channel rate in bits/s.
    pub bits_per_sec: u64,
    /// Bytes of PHY+MAC framing added to every packet's payload size.
    pub header_bytes: usize,
    /// MAC mode (contention vs. contention-free).
    pub mac: MacMode,
    /// Maximum number of MAC (re)transmission attempts when the channel is
    /// busy before the packet is dropped.
    pub max_backoffs: u32,
    /// Base backoff window; the n-th retry waits uniform(0, window·2ⁿ).
    pub backoff_window: SimDuration,
    /// Link-layer (ARQ) retransmissions for unicast frames whose addressee
    /// did not receive them; models the 802.11 retry behaviour.
    pub unicast_retries: u32,
    /// Uniform random per-reception packet loss probability in `[0, 1)`,
    /// applied on top of collisions (models fading/interference the unit
    /// disc cannot). Ignored when the fault plan selects a
    /// [`crate::faults::LinkLossModel::GilbertElliott`] channel.
    pub loss_rate: f64,
    /// Interval between neighbour beacons (0.5 s in the paper). A zero
    /// duration disables beaconing (neighbor tables stay empty unless the
    /// oracle mode below is used).
    pub beacon_interval: SimDuration,
    /// Beacon payload size in bytes (id + position + speed).
    pub beacon_bytes: usize,
    /// Neighbour entries older than this are ignored; defaults to 2.2×
    /// the beacon interval so one lost beacon does not evict a neighbour.
    pub neighbor_timeout: SimDuration,
    /// Spatial index answering range queries on the radio hot path
    /// (deliveries, oracle neighbours, table warm-up, jam-zone
    /// membership). [`NeighborIndex::Grid`] by default;
    /// [`NeighborIndex::BruteForce`] keeps the O(n) scan as an oracle.
    pub neighbor_index: NeighborIndex,
    /// Reuse each node's audible candidate list across transmissions until
    /// the grid refreshes or the padded query window moves to different
    /// cells. Pure caching — runs are bit-identical with it off (the
    /// equivalence is tested); the switch exists for profiling A/B runs.
    /// No effect under [`NeighborIndex::BruteForce`]. On by default.
    pub audible_cache: bool,
    /// If true, neighbour tables are fed directly from the mobility oracle
    /// (perfect, instantaneous neighbourhood knowledge, no beacon traffic).
    /// Used by unit tests and by ablations that want to isolate protocol
    /// behaviour from beacon staleness.
    pub oracle_neighbors: bool,
    /// Transmit power draw in watts (energy = power × airtime).
    pub tx_power_w: f64,
    /// Receive power draw in watts; every audible node pays reception
    /// energy (overhearing is how itinerary probes reach D-nodes).
    pub rx_power_w: f64,
    /// Hard stop: no event later than this is processed.
    pub time_limit: SimDuration,
    /// Fault injection plan (crashes, bursty loss, jamming, energy
    /// budgets); the default plan is inert. See [`crate::faults`].
    pub faults: FaultPlan,
    /// Flight recorder settings (see [`crate::trace`]): typed, ring-buffered
    /// event traces for golden files and the invariant checker. Disabled by
    /// default.
    pub trace: TraceConfig,
    /// Legacy switch: enable the flight recorder so transmission starts are
    /// recorded. Superseded by [`SimConfig::trace`]; setting this is
    /// equivalent to `trace.enabled = true`.
    pub trace_tx: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        let beacon_interval = SimDuration::from_millis(500);
        SimConfig {
            field: Rect::new(0.0, 0.0, 115.0, 115.0),
            radio_range: 20.0,
            bits_per_sec: 250_000,
            header_bytes: 16,
            mac: MacMode::Contention,
            max_backoffs: 6,
            backoff_window: SimDuration::from_micros(640),
            unicast_retries: 3,
            loss_rate: 0.0,
            beacon_interval,
            beacon_bytes: 20,
            neighbor_timeout: beacon_interval.mul_f64(2.2),
            neighbor_index: NeighborIndex::default(),
            audible_cache: true,
            oracle_neighbors: false,
            tx_power_w: 0.0522,
            rx_power_w: 0.0564,
            time_limit: SimDuration::from_secs_f64(100.0),
            faults: FaultPlan::default(),
            trace: TraceConfig::default(),
            trace_tx: false,
        }
    }
}

impl SimConfig {
    /// Airtime of a protocol packet carrying `payload_bytes`.
    #[inline]
    pub fn packet_airtime(&self, payload_bytes: usize) -> SimDuration {
        SimDuration::airtime(self.header_bytes + payload_bytes, self.bits_per_sec)
    }

    /// Validate invariants; returns the first violation found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.field.is_empty() {
            return Err(ConfigError::EmptyField);
        }
        if self.radio_range <= 0.0 || self.radio_range.is_nan() {
            return Err(ConfigError::NonPositiveRadioRange(self.radio_range));
        }
        if self.bits_per_sec == 0 {
            return Err(ConfigError::ZeroChannelRate);
        }
        if !(0.0..1.0).contains(&self.loss_rate) {
            return Err(ConfigError::LossRateOutOfRange(self.loss_rate));
        }
        if self.tx_power_w < 0.0 || self.rx_power_w < 0.0 {
            return Err(ConfigError::NegativePower {
                tx_power_w: self.tx_power_w,
                rx_power_w: self.rx_power_w,
            });
        }
        if self.max_backoffs == 0 {
            return Err(ConfigError::ZeroMaxBackoffs);
        }
        if self.time_limit == SimDuration::ZERO {
            return Err(ConfigError::ZeroTimeLimit);
        }
        if self.beacon_interval > SimDuration::ZERO && self.neighbor_timeout <= self.beacon_interval
        {
            return Err(ConfigError::NeighborTimeoutTooShort {
                neighbor_timeout: self.neighbor_timeout,
                beacon_interval: self.beacon_interval,
            });
        }
        if (self.trace.enabled || self.trace_tx) && self.trace.capacity == 0 {
            return Err(ConfigError::ZeroTraceCapacity);
        }
        self.faults.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = SimConfig::default();
        assert_eq!(c.field, Rect::new(0.0, 0.0, 115.0, 115.0));
        assert_eq!(c.radio_range, 20.0);
        assert_eq!(c.bits_per_sec, 250_000);
        assert_eq!(c.beacon_interval, SimDuration::from_millis(500));
        assert_eq!(c.mac, MacMode::Contention);
        assert_eq!(c.neighbor_index, NeighborIndex::Grid);
        assert!(c.faults.is_inert());
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn airtime_includes_header() {
        let c = SimConfig::default();
        // (16 + 109) bytes = 1000 bits at 250 kbps -> 4 ms.
        assert_eq!(c.packet_airtime(109), SimDuration::from_millis(4));
    }

    #[test]
    fn validate_rejects_bad_loss_rate() {
        let c = SimConfig {
            loss_rate: 1.5,
            ..SimConfig::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::LossRateOutOfRange(1.5)));
    }

    #[test]
    fn validate_rejects_zero_max_backoffs() {
        let c = SimConfig {
            max_backoffs: 0,
            ..SimConfig::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroMaxBackoffs));
    }

    #[test]
    fn validate_rejects_zero_time_limit() {
        let c = SimConfig {
            time_limit: SimDuration::ZERO,
            ..SimConfig::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroTimeLimit));
    }

    #[test]
    fn validate_rejects_short_neighbor_timeout() {
        let c = SimConfig {
            neighbor_timeout: SimDuration::from_millis(400),
            ..SimConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NeighborTimeoutTooShort { .. })
        ));
        // A disabled beacon (zero interval) lifts the constraint.
        let c = SimConfig {
            beacon_interval: SimDuration::ZERO,
            neighbor_timeout: SimDuration::ZERO,
            oracle_neighbors: true,
            ..SimConfig::default()
        };
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_fault_plan() {
        let c = SimConfig {
            faults: crate::faults::FaultPlan::random_crashes(2.0, 0.0, 1.0),
            ..SimConfig::default()
        };
        assert!(matches!(c.validate(), Err(ConfigError::Fault(_))));
        let errmsg = c.validate().unwrap_err().to_string();
        assert!(errmsg.contains("fraction"), "{errmsg}");
    }

    #[test]
    fn validate_rejects_zero_trace_capacity() {
        let c = SimConfig {
            trace: TraceConfig {
                enabled: true,
                capacity: 0,
                verbose: false,
            },
            ..SimConfig::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroTraceCapacity));
        // The legacy switch routes through the same recorder.
        let c = SimConfig {
            trace: TraceConfig {
                enabled: false,
                capacity: 0,
                verbose: false,
            },
            trace_tx: true,
            ..SimConfig::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroTraceCapacity));
    }

    #[test]
    fn serving_error_variants_display() {
        // The serving-layer knobs (validated by `DiknnConfig`/workload
        // validation in the downstream crates) share this error type.
        for (e, needle) in [
            (ConfigError::NonPositiveQueryRate(0.0), "rate"),
            (ConfigError::NonPositiveCacheTtl(-1.0), "TTL"),
            (ConfigError::NegativeMergeRadius(-3.0), "merge radius"),
            (ConfigError::ZeroAdmissionCeiling, "admission ceiling"),
        ] {
            let s = e.to_string();
            assert!(s.contains(needle), "{s} should mention {needle}");
        }
    }

    #[test]
    fn config_error_displays() {
        let e = ConfigError::NeighborTimeoutTooShort {
            neighbor_timeout: SimDuration::from_millis(100),
            beacon_interval: SimDuration::from_millis(500),
        };
        let s = e.to_string();
        assert!(s.contains("neighbor_timeout"), "{s}");
    }
}
