//! Node lifecycle state machine for the resident service mode.
//!
//! The PR-2 fault model tracked liveness as a single `alive` bit per node.
//! Long-running service deployments distinguish *why* a node is not
//! answering: a node that **left** (churn, reboot, duty-cycling) will come
//! back and re-learn its neighbourhood, while a node that is **dead**
//! (battery exhausted) never will. The engine keeps the hot-path `alive`
//! bitmap as the single source of truth for radio behaviour and maintains
//! this phase alongside it for lifecycle-aware callers (the churn planner,
//! the invariant checker, metrics).

/// Where a node is in its up/down/dead lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodePhase {
    /// Participating normally: transmits, receives, runs timers.
    #[default]
    Up,
    /// Temporarily out of the network (crash awaiting recovery, or a churn
    /// departure). Radio and CPU are off; a later `Recover`/`Rejoin` event
    /// returns the node to [`NodePhase::Up`].
    Down,
    /// Permanently dead (energy budget exhausted). Terminal: rejoin and
    /// recovery events are refused.
    Dead,
}

impl NodePhase {
    /// Whether the node currently participates in the network.
    #[inline]
    pub fn is_up(self) -> bool {
        self == NodePhase::Up
    }

    /// Short label for traces and metrics lines.
    pub fn label(self) -> &'static str {
        match self {
            NodePhase::Up => "up",
            NodePhase::Down => "down",
            NodePhase::Dead => "dead",
        }
    }
}

diknn_snap::snap_enum!(NodePhase {
    0 => Up,
    1 => Down,
    2 => Dead,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_phase_is_up() {
        assert_eq!(NodePhase::default(), NodePhase::Up);
        assert!(NodePhase::Up.is_up());
        assert!(!NodePhase::Down.is_up());
        assert!(!NodePhase::Dead.is_up());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(NodePhase::Up.label(), "up");
        assert_eq!(NodePhase::Down.label(), "down");
        assert_eq!(NodePhase::Dead.label(), "dead");
    }

    #[test]
    fn snap_roundtrip() {
        use diknn_snap::{Snap, SnapReader, SnapWriter};
        for phase in [NodePhase::Up, NodePhase::Down, NodePhase::Dead] {
            let mut w = SnapWriter::new();
            phase.snap(&mut w);
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            assert_eq!(NodePhase::unsnap(&mut r).unwrap(), phase);
        }
    }
}
