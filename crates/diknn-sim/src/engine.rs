//! The discrete-event engine: event queue, MAC, delivery, timers, beacons.
//!
//! Design notes:
//!
//! * **Determinism.** The clock is integer nanoseconds, ties are broken by a
//!   monotone sequence number, receiver iteration is in `NodeId` order, and
//!   all randomness flows from one seeded PCG-family RNG. Same seed ⇒ same
//!   trace, byte for byte.
//! * **Ownership.** All mutable run state lives in [`Ctx`]; the protocol
//!   under test is a separate field of [`Simulator`], so protocol callbacks
//!   receive `&mut Ctx` without borrow gymnastics.
//! * **Radio model.** Unit-disc propagation evaluated at transmission start;
//!   carrier-sense with binary-exponential backoff; a reception overlapping
//!   any other audible transmission is destroyed (classic ns-2 style
//!   collision rule, which also captures hidden terminals); optional uniform
//!   packet loss on top. Unicast frames get link-layer retries.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use diknn_geom::Point;
use diknn_mobility::Mobility;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use diknn_snap::{Snap, SnapError, SnapReader, SnapState, SnapWriter};

use crate::config::{MacMode, NeighborIndex, SimConfig};
use crate::energy::{EnergyMeter, TrafficClass};
use crate::faults::LinkLossModel;
use crate::grid::SpatialGrid;
use crate::ids::{NodeId, TimerId};
use crate::lifecycle::NodePhase;
use crate::neighbors::{Neighbor, NeighborTable};
use crate::queue::{EventQueue, FramePool, Handle};
use crate::shard::{AudibleWorld, ShardExecutor, WorkItem, ANCHOR_EPS};
use crate::soa::{FlowLedger, NodeSoA};
use crate::stats::{PerfCounters, SimStats};
use crate::time::{SimDuration, SimTime};
use crate::trace::{DropReason, EventTrace, ProtoEvent, TraceKind};

/// Snapshot format version of the simulator's mutable state (see
/// [`Simulator::snapshot`]). The versioning rule: **any** change that
/// alters the snapshot byte stream — a reordered field, a new enum tag, an
/// added piece of state — must bump this constant. Old snapshots are then
/// rejected loudly by [`Simulator::restore`] instead of being quietly
/// misread; there is deliberately no cross-version migration path.
///
/// Version 2: hot-path memory overhaul (DESIGN §14) — frames moved from a
/// `BTreeMap` to a slot/generation [`FramePool`] (handles replace dense tx
/// ids on the wire), per-node state packed into [`NodeSoA`] with the new
/// carrier-sense columns, the flow-energy ledger densified, and per-event-
/// kind counters added to [`SimStats`].
pub const SNAP_VERSION: u32 = 2;

/// A mobility plan shared between the simulator and the ground-truth oracle.
pub type SharedMobility = Arc<dyn Mobility>;

/// Where a frame is addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// Link-local broadcast: every node in radio range processes it.
    Broadcast,
    /// Addressed to one node; others overhear (and pay energy) but do not
    /// process it.
    Unicast(NodeId),
}

/// The behaviour under test. One instance drives *all* nodes: per-node
/// protocol state is owned by the implementation, keyed by [`NodeId`].
pub trait Protocol {
    /// Application-level message carried by protocol frames.
    type Msg: Clone;

    /// Called once at time zero, before any event.
    fn on_start(&mut self, _ctx: &mut Ctx<Self::Msg>) {}

    /// A frame addressed to (or broadcast at) `at` arrived from `from`.
    fn on_message(&mut self, at: NodeId, from: NodeId, msg: &Self::Msg, ctx: &mut Ctx<Self::Msg>);

    /// A timer set via [`Ctx::set_timer`] fired at node `at`.
    fn on_timer(&mut self, _at: NodeId, _key: u64, _ctx: &mut Ctx<Self::Msg>) {}

    /// A unicast from `at` to `to` failed after all retries (moved out of
    /// range, collisions, or random loss).
    fn on_send_failed(
        &mut self,
        _at: NodeId,
        _to: NodeId,
        _msg: &Self::Msg,
        _ctx: &mut Ctx<Self::Msg>,
    ) {
    }
}

/// Frame content: engine beacons or protocol messages.
#[derive(Debug, Clone)]
enum Frame<M> {
    Beacon,
    Proto(M),
}

/// A frame waiting for (or undergoing) MAC transmission.
struct PendingTx<M> {
    from: NodeId,
    dest: Destination,
    frame: Frame<M>,
    payload_bytes: usize,
    /// Channel-busy backoff attempts for the current transmission try.
    backoffs: u32,
    /// Link-layer retransmissions already performed (unicast only).
    retries: u32,
    /// Flow label for energy attribution (query id for KNN protocols);
    /// `None` for beacons and untagged traffic. Pure accounting — never
    /// consulted by the MAC or delivery paths.
    flow: Option<u32>,
    /// Set while the frame is on the air (it has a matching `ActiveTx`);
    /// guards against double-starting a transmission.
    on_air: bool,
}

/// A frame currently on the air.
struct ActiveTx {
    id: Handle,
    from: NodeId,
    /// Nodes that were within range at transmission start, with a flag set
    /// when their copy has been destroyed by a collision.
    receivers: Vec<(NodeId, bool)>,
    airtime: SimDuration,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    MacAttempt(Handle),
    TxEnd(Handle),
    Timer {
        node: NodeId,
        id: TimerId,
        key: u64,
    },
    Beacon(NodeId),
    /// Fault plan: fail-stop crash of a node.
    Crash(NodeId),
    /// Fault plan: a crashed node reboots.
    Recover(NodeId),
    /// Churn plan: the node leaves the network.
    Leave(NodeId),
    /// Churn plan: a churned-out node rejoins (amnesiac under state loss).
    Rejoin(NodeId),
}

// ----- snapshot encoding of the engine-private state types --------------
//
// These impls are part of the snapshot wire format: changing any of them
// (field order, tags) requires bumping `SNAP_VERSION`.

diknn_snap::snap_enum!(Destination {
    0 => Broadcast,
    1 => Unicast(to),
});

impl<M: Snap> Snap for Frame<M> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            Frame::Beacon => w.put_u8(0),
            Frame::Proto(m) => {
                w.put_u8(1);
                m.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.take_u8()? {
            0 => Ok(Frame::Beacon),
            1 => Ok(Frame::Proto(M::unsnap(r)?)),
            tag => Err(SnapError::BadTag { ty: "Frame", tag }),
        }
    }
}

impl<M: Snap> Snap for PendingTx<M> {
    fn snap(&self, w: &mut SnapWriter) {
        self.from.snap(w);
        self.dest.snap(w);
        self.frame.snap(w);
        self.payload_bytes.snap(w);
        self.backoffs.snap(w);
        self.retries.snap(w);
        self.flow.snap(w);
        self.on_air.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(PendingTx {
            from: NodeId::unsnap(r)?,
            dest: Destination::unsnap(r)?,
            frame: Frame::unsnap(r)?,
            payload_bytes: usize::unsnap(r)?,
            backoffs: u32::unsnap(r)?,
            retries: u32::unsnap(r)?,
            flow: Option::unsnap(r)?,
            on_air: bool::unsnap(r)?,
        })
    }
}

diknn_snap::snap_struct!(ActiveTx {
    id,
    from,
    receivers,
    airtime
});

diknn_snap::snap_enum!(EventKind {
    0 => MacAttempt(id),
    1 => TxEnd(id),
    2 => Timer { node, id, key },
    3 => Beacon(node),
    4 => Crash(node),
    5 => Recover(node),
    6 => Leave(node),
    7 => Rejoin(node),
});

/// Per-node cached grid-candidate lists for the audible-set query (see
/// `Ctx::fill_receivers`). Derived state: never serialized — a restored
/// run starts cold — and semantically transparent, since a hit returns
/// exactly the list a fresh grid query over the same (epoch, cell-window)
/// would produce.
struct AudCache {
    /// Grid epoch each node's list was filled at; `u64::MAX` = never.
    epoch: Vec<u64>,
    /// Padded query cell-window the list was filled for.
    window: Vec<(u32, u32, u32, u32)>,
    /// Sorted (ascending, unique) grid candidate ids.
    list: Vec<Vec<u32>>,
}

impl AudCache {
    fn new(n: usize) -> Self {
        AudCache {
            epoch: vec![u64::MAX; n],
            window: vec![(0, 0, 0, 0); n],
            list: vec![Vec::new(); n],
        }
    }
}

/// Reusable hot-path scratch buffers. Never serialized: contents are dead
/// between events; only the allocations are recycled.
#[derive(Default)]
struct Scratch {
    /// Grid candidates for cache-off audible queries.
    cand: Vec<u32>,
    /// Free receiver lists for `ActiveTx` (returned at end-of-frame).
    recv: Vec<Vec<(NodeId, bool)>>,
    /// Free delivery lists (returned once callbacks have run).
    succ: Vec<Vec<NodeId>>,
}

/// All mutable run state except the protocol: world, queue, RNG, meters.
///
/// Protocol callbacks receive `&mut Ctx` and use its public API to inspect
/// the world and emit frames/timers.
pub struct Ctx<M> {
    cfg: SimConfig,
    /// Mobility plans, shared with shard-worker world snapshots (the
    /// `Arc` makes a snapshot one refcount bump instead of `n` clones).
    mobility: Arc<Vec<SharedMobility>>,
    tables: Vec<NeighborTable>,
    energy: Vec<EnergyMeter>,
    now: SimTime,
    rng: SmallRng,
    stats: SimStats,
    /// Inline 4-ary min-heap over `(time, seq)`; see [`crate::queue`].
    queue: EventQueue<EventKind>,
    seq: u64,
    next_timer: u64,
    /// Frames waiting for (or undergoing) MAC transmission, addressed by
    /// generation-checked [`Handle`]s carried inside the queued events.
    frames: FramePool<PendingTx<M>>,
    active: Vec<ActiveTx>,
    cancelled_timers: BTreeSet<u64>,
    stopped: bool,
    /// Whether [`Simulator::start`] has run (beacon phases seeded,
    /// `on_start` delivered). Snapshotted so a restored run never re-runs
    /// its startup sequence.
    started: bool,
    /// Per-node state columns (liveness, lifecycle, Gilbert–Elliott
    /// channel state, carrier-sense counters), indexed by dense node id.
    nodes: NodeSoA,
    /// Spatial index over node positions for the radio hot path; `None`
    /// under [`NeighborIndex::BruteForce`]. Grid answers are candidate
    /// supersets, always exact-checked against true positions, so both
    /// settings produce bit-identical runs (see [`crate::grid`]). Behind
    /// an `Arc` so shard-worker snapshots share it; the run loop mutates
    /// through [`Arc::make_mut`], which is in-place (free) while no
    /// snapshot is outstanding and copy-on-write while one is.
    grid: Option<Arc<SpatialGrid>>,
    /// The flight recorder (see [`crate::trace`]); disabled unless
    /// `SimConfig::trace.enabled` (or the legacy `trace_tx`) is set.
    trace: EventTrace,
    /// Per-flow protocol energy ledger (joules), indexed by the flow label
    /// passed to [`Ctx::unicast_flow`]/[`Ctx::broadcast_flow`]. Each frame's
    /// tx charge plus every receiver's rx charge lands on its flow, so the
    /// ledger sums to `total_protocol_energy_j` when all traffic is tagged.
    flow_energy: FlowLedger,
    /// Incremental audible-set cache (derived, not snapshotted).
    aud: AudCache,
    /// Recycled hot-path buffers (derived, not snapshotted).
    scratch: Scratch,
    /// Implementation performance counters (not snapshotted, not part of
    /// any behavioural fingerprint — see [`PerfCounters`]).
    perf: PerfCounters,
    /// Version counter over `nodes.alive`/`nodes.phase`: bumped on every
    /// liveness flip (crash, recover, leave, rejoin, energy death).
    /// Derived state (never snapshotted — restore starts at 0); stamps
    /// shard-worker world snapshots so stale precomputed receiver sets
    /// are detected and recomputed inline (see [`crate::shard`]).
    alive_ver: u64,
    /// Mirror of every future `MacAttempt` in the queue, keyed
    /// `(time, handle)` with the sending node as value. `Some` only while
    /// a sharded run loop is active (see [`Simulator::run_until_sharded`]);
    /// the three MAC scheduling sites feed it through
    /// [`Ctx::schedule_mac_attempt`]. Derived state, never snapshotted.
    plan_feed: Option<BTreeMap<(SimTime, Handle), NodeId>>,
    /// Cached alive-bitmap snapshot keyed by `alive_ver`, so consecutive
    /// world snapshots between liveness flips share one allocation.
    /// Derived state, never snapshotted.
    alive_snap: Option<(u64, Arc<Vec<bool>>)>,
}

impl<M: Clone> Ctx<M> {
    // ----- inspection ---------------------------------------------------

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run configuration.
    #[inline]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Number of nodes in the network.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.mobility.len()
    }

    /// Exact current position of `node` (nodes are location-aware, §3.1).
    #[inline]
    pub fn position(&self, node: NodeId) -> Point {
        self.mobility[node.index()].position_at(self.now.as_secs_f64())
    }

    /// Exact current speed of `node` in m/s.
    #[inline]
    pub fn speed(&self, node: NodeId) -> f64 {
        self.mobility[node.index()].speed_at(self.now.as_secs_f64())
    }

    /// Snapshot of `node`'s neighbour table (stale entries pruned).
    ///
    /// With `oracle_neighbors` the snapshot is computed from ground truth
    /// instead — perfect knowledge, for tests and ablations.
    ///
    /// Takes `&mut self` because pruning is a behavioural side effect: it
    /// decides where a later-re-heard neighbour lands in the table's
    /// insertion order. Protocol decision paths keep calling this; pure
    /// observers can use the read-only [`Ctx::neighbors_snapshot`].
    pub fn neighbors(&mut self, node: NodeId) -> Vec<Neighbor> {
        if self.cfg.oracle_neighbors {
            return self.neighbors_snapshot(node);
        }
        let cutoff = self.neighbor_cutoff();
        let table = &mut self.tables[node.index()];
        if self.now > SimTime::ZERO + self.cfg.neighbor_timeout {
            table.expire(cutoff);
        }
        table.entries().to_vec()
    }

    /// Read-only view of `node`'s neighbourhood: the same entries
    /// [`Ctx::neighbors`] returns, without the table-pruning side effect.
    ///
    /// Under `oracle_neighbors` this is the ground-truth in-range set
    /// (grid-accelerated when the grid index is enabled), ascending by
    /// id. Otherwise it filters the beacon table on the fly.
    pub fn neighbors_snapshot(&self, node: NodeId) -> Vec<Neighbor> {
        if self.cfg.oracle_neighbors {
            let me = self.position(node);
            let range2 = self.cfg.radio_range * self.cfg.radio_range;
            let t = self.now.as_secs_f64();
            let neighbor_of = |i: usize| -> Option<Neighbor> {
                if i == node.index() || !self.nodes.alive[i] {
                    return None;
                }
                let p = self.mobility[i].position_at(t);
                (me.dist_sq(p) <= range2).then(|| Neighbor {
                    id: NodeId(i as u32),
                    position: p,
                    speed: self.mobility[i].speed_at(t),
                    heard_at: self.now,
                })
            };
            if let Some(grid) = &self.grid {
                let mut cand = Vec::new();
                grid.candidates_near(me, self.cfg.radio_range, self.now, &mut cand);
                cand.sort_unstable();
                return cand
                    .into_iter()
                    .filter_map(|i| neighbor_of(i as usize))
                    .collect();
            }
            return (0..self.mobility.len()).filter_map(neighbor_of).collect();
        }
        let table = &self.tables[node.index()];
        if self.now > SimTime::ZERO + self.cfg.neighbor_timeout {
            let cutoff = self.neighbor_cutoff();
            table
                .entries()
                .iter()
                .filter(|e| e.heard_at > cutoff)
                .copied()
                .collect()
        } else {
            table.entries().to_vec()
        }
    }

    /// Beacon entries heard at or before this time are stale.
    fn neighbor_cutoff(&self) -> SimTime {
        if self.now.as_nanos() > self.cfg.neighbor_timeout.as_nanos() {
            SimTime::from_nanos(self.now.as_nanos() - self.cfg.neighbor_timeout.as_nanos())
        } else {
            SimTime::ZERO
        }
    }

    /// Engine counters so far.
    #[inline]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Mutable counters: protocols bump the protocol-level fault counters
    /// (`tokens_reissued`, `query_retries`) through this.
    #[inline]
    pub fn stats_mut(&mut self) -> &mut SimStats {
        &mut self.stats
    }

    /// Whether `node` is currently up (fault plan liveness).
    #[inline]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes.alive[node.index()]
    }

    /// Lifecycle phase of `node`: up, temporarily down (crash/churn), or
    /// permanently dead (energy exhaustion).
    #[inline]
    pub fn phase(&self, node: NodeId) -> NodePhase {
        self.nodes.phase[node.index()]
    }

    /// Number of currently-live nodes.
    pub fn alive_count(&self) -> usize {
        self.nodes.alive.iter().filter(|&&a| a).count()
    }

    /// The recorded event trace; empty unless tracing was enabled via
    /// `SimConfig::trace` (or the legacy `trace_tx`).
    #[inline]
    pub fn trace(&self) -> &EventTrace {
        &self.trace
    }

    /// Energy meter of one node.
    #[inline]
    pub fn energy(&self, node: NodeId) -> &EnergyMeter {
        &self.energy[node.index()]
    }

    /// Sum of protocol (non-beacon) radio energy over all nodes, in joules.
    pub fn total_protocol_energy_j(&self) -> f64 {
        self.energy.iter().map(EnergyMeter::protocol_j).sum()
    }

    /// Sum of all radio energy (incl. beacons) over all nodes, in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.energy.iter().map(EnergyMeter::total_j).sum()
    }

    /// Per-flow protocol energy ledger: joules attributed to each flow
    /// label (query id) via [`Ctx::unicast_flow`]/[`Ctx::broadcast_flow`].
    /// Untagged traffic (plain `unicast`/`broadcast`, beacons) is charged
    /// to the node meters only and reads as zero here.
    #[inline]
    pub fn flow_energy_j(&self) -> &FlowLedger {
        &self.flow_energy
    }

    /// Implementation-side performance counters (audible-cache hit rate,
    /// grid refreshes). Deliberately outside [`Ctx::stats`]: these describe
    /// *how* the run was computed, differ across index variants, and reset
    /// on restore — see [`PerfCounters`].
    #[inline]
    pub fn perf(&self) -> &PerfCounters {
        &self.perf
    }

    /// Seeded RNG for protocol-level randomness (timer jitter etc.).
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    // ----- actions ------------------------------------------------------

    /// Queue a broadcast frame from `from` carrying `msg`;
    /// `payload_bytes` drives airtime and energy.
    pub fn broadcast(&mut self, from: NodeId, payload_bytes: usize, msg: M) {
        self.broadcast_flow(from, payload_bytes, msg, None);
    }

    /// Queue a unicast frame from `from` to `to`.
    pub fn unicast(&mut self, from: NodeId, to: NodeId, payload_bytes: usize, msg: M) {
        self.unicast_flow(from, to, payload_bytes, msg, None);
    }

    /// [`Ctx::broadcast`] with a flow label for per-query energy
    /// attribution (see [`Ctx::flow_energy_j`]). The label never affects
    /// MAC behaviour or delivery.
    pub fn broadcast_flow(
        &mut self,
        from: NodeId,
        payload_bytes: usize,
        msg: M,
        flow: Option<u32>,
    ) {
        self.enqueue_frame(
            from,
            Destination::Broadcast,
            Frame::Proto(msg),
            payload_bytes,
            flow,
        );
    }

    /// [`Ctx::unicast`] with a flow label for per-query energy attribution.
    pub fn unicast_flow(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload_bytes: usize,
        msg: M,
        flow: Option<u32>,
    ) {
        debug_assert!(from != to, "unicast to self");
        self.enqueue_frame(
            from,
            Destination::Unicast(to),
            Frame::Proto(msg),
            payload_bytes,
            flow,
        );
    }

    /// Schedule `on_timer(node, key)` after `delay`.
    pub fn set_timer(&mut self, node: NodeId, delay: SimDuration, key: u64) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        let at = self.now + delay;
        self.schedule(at, EventKind::Timer { node, id, key });
        id
    }

    /// Cancel a previously set timer (no-op if it already fired).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.cancelled_timers.insert(id.0);
    }

    /// Request that the run stop after the current event.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    // ----- flight recorder ----------------------------------------------

    /// Record a protocol-level trace event at `node` (no-op while the
    /// flight recorder is disabled). Protocol implementations reach this
    /// through the `TraceSink` trait in `diknn-core`.
    pub fn record_proto(&mut self, node: NodeId, ev: ProtoEvent) {
        self.trace_event(node, TraceKind::Proto(ev));
    }

    #[inline]
    fn trace_event(&mut self, node: NodeId, kind: TraceKind) {
        if self.trace.is_enabled() {
            self.trace.record(self.now, node, kind);
            self.stats.trace_events += 1;
        }
    }

    /// Record a chatty per-reception event (kept only in verbose mode).
    #[inline]
    fn trace_verbose(&mut self, node: NodeId, kind: TraceKind) {
        if self.trace.is_verbose() {
            self.trace.record(self.now, node, kind);
            self.stats.trace_events += 1;
        }
    }

    /// Record the node's running energy total after a charge. Only done
    /// under an energy budget, where the invariant checker needs the
    /// series; unbudgeted runs would drown the ring in meter samples.
    #[inline]
    fn trace_energy(&mut self, node: NodeId) {
        if self.trace.is_enabled() && self.cfg.faults.energy_budget_j.is_some() {
            let spent_j = self.energy[node.index()].total_j();
            self.trace_event(node, TraceKind::Energy { spent_j });
        }
    }

    // ----- internals ----------------------------------------------------

    fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(time, seq, kind);
    }

    fn enqueue_frame(
        &mut self,
        from: NodeId,
        dest: Destination,
        frame: Frame<M>,
        payload_bytes: usize,
        flow: Option<u32>,
    ) {
        let h = self.frames.insert(PendingTx {
            from,
            dest,
            frame,
            payload_bytes,
            backoffs: 0,
            retries: 0,
            flow,
            on_air: false,
        });
        // Initial desynchronisation jitter.
        let jitter = self.random_backoff(0);
        let at = self.now + jitter;
        self.schedule_mac_attempt(at, h, from);
    }

    /// Schedule the MAC attempt for frame `h` at `at`, mirroring it into
    /// the plan feed when a sharded run loop is collecting one. Every
    /// `MacAttempt` scheduling site (initial jitter, busy backoff, ARQ
    /// retry) funnels through here so the feed never misses a future
    /// transmission start.
    fn schedule_mac_attempt(&mut self, at: SimTime, h: Handle, from: NodeId) {
        self.schedule(at, EventKind::MacAttempt(h));
        if let Some(feed) = self.plan_feed.as_mut() {
            feed.insert((at, h), from);
        }
    }

    fn random_backoff(&mut self, exponent: u32) -> SimDuration {
        let window = self.cfg.backoff_window.as_nanos() << exponent.min(6);
        SimDuration::from_nanos(self.rng.gen_range(0..=window.max(1)))
    }

    // lint: hot-path (carrier sense + audibility run once per MAC attempt)
    /// True when `node` senses the channel busy: it is transmitting or is
    /// within range of an ongoing transmission. O(1): the SoA counters are
    /// maintained by `start_transmission`/`finish_transmission` and count
    /// exactly the memberships the old scan over `active` tested.
    #[inline]
    fn channel_busy(&self, node: NodeId) -> bool {
        let i = node.index();
        self.nodes.tx_count[i] > 0 || self.nodes.rx_cover[i] > 0
    }

    /// Append to `out` (which must be empty) the nodes within radio range
    /// of `from` right now, ascending by id.
    ///
    /// With the grid index and `audible_cache` on, the node's grid
    /// candidate list is reused across transmissions until the grid
    /// refreshes or the padded query window moves to different cells.
    /// Bucket contents only change on refresh (= epoch bump), so a cached
    /// list over the same (epoch, window) is byte-identical to a fresh
    /// query: same membership, same order, same downstream RNG draws.
    fn fill_receivers(&mut self, from: NodeId, out: &mut Vec<(NodeId, bool)>) {
        debug_assert!(out.is_empty());
        let origin = self.position(from);
        let range2 = self.cfg.radio_range * self.cfg.radio_range;
        let t = self.now.as_secs_f64();
        let fi = from.index();
        let Ctx {
            cfg,
            mobility,
            nodes,
            grid,
            aud,
            scratch,
            perf,
            now,
            ..
        } = self;
        let in_range = |i: usize| -> bool {
            i != fi && nodes.alive[i] && origin.dist_sq(mobility[i].position_at(t)) <= range2
        };
        let Some(grid) = grid.as_deref() else {
            for i in 0..mobility.len() {
                if in_range(i) {
                    out.push((NodeId(i as u32), false));
                }
            }
            return;
        };
        let window = grid.cover_cells(origin, cfg.radio_range, *now);
        let cand: &[u32] = if cfg.audible_cache {
            if aud.epoch[fi] == grid.epoch() && aud.window[fi] == window {
                perf.aud_cache_hits += 1;
            } else {
                let list = &mut aud.list[fi];
                list.clear();
                grid.collect_cells(window, list);
                list.sort_unstable();
                aud.epoch[fi] = grid.epoch();
                aud.window[fi] = window;
                perf.aud_cache_misses += 1;
            }
            &aud.list[fi]
        } else {
            scratch.cand.clear();
            grid.collect_cells(window, &mut scratch.cand);
            scratch.cand.sort_unstable();
            &scratch.cand
        };
        // Triage candidates against their grid anchors before paying for
        // an exact mobility-plan evaluation. A candidate's true position
        // is within `drift` of its anchor, so anchor distances outside
        // `range ± drift` decide membership outright; only the ambiguity
        // band needs the exact check. `ANCHOR_EPS` absorbs the few-ulp
        // rounding slack between the anchor-distance and exact-distance
        // computations, keeping both shortcuts conservative: any
        // candidate the triage classifies would get the same answer from
        // the exact predicate, so the receiver set — and every RNG draw
        // downstream of it — is bit-identical to the brute-force scan.
        // (`ANCHOR_EPS` is shared with `shard::AudibleWorld::compute`,
        // which mirrors this query for shard workers.)
        let drift = grid.drift_bound(*now);
        let far = cfg.radio_range + drift + ANCHOR_EPS;
        let far_sq = far * far;
        let near = cfg.radio_range - drift - ANCHOR_EPS;
        let near_sq = if near > 0.0 { near * near } else { -1.0 };
        let anchors = grid.anchors();
        for &i in cand {
            let ix = i as usize;
            if ix == fi || !nodes.alive[ix] {
                continue;
            }
            let d0 = origin.dist_sq(anchors[ix]);
            if d0 > far_sq {
                continue; // definitely out of range
            }
            if d0 > near_sq && origin.dist_sq(mobility[ix].position_at(t)) > range2 {
                continue; // ambiguity band: exact check says out
            }
            out.push((NodeId(i), false));
        }
    }

    /// Incrementally re-bucket the spatial grid once accumulated node
    /// drift could exceed the refresh slack. Called by the run loop on
    /// every event; a cheap no-op while fresh, and always for static
    /// scenarios (`vmax = 0` never drifts).
    fn refresh_grid_if_stale(&mut self) {
        let now = self.now;
        let Ctx {
            mobility,
            grid,
            perf,
            ..
        } = self;
        if let Some(grid) = grid.as_mut() {
            if grid.needs_refresh(now) {
                let t = now.as_secs_f64();
                // In-place while unshared (the sequential path); a
                // copy-on-write clone while a shard-worker snapshot still
                // holds the old buckets. The epoch bump makes any result
                // computed from that old snapshot visibly stale.
                Arc::make_mut(grid).refresh(|i| mobility[i].position_at(t), now);
                perf.grid_refreshes += 1;
            }
        }
    }

    /// Begin transmitting pending frame `h`: mark collisions, bump the
    /// carrier-sense counters, and schedule the end-of-frame event.
    /// `pre` may hold a shard-worker precomputed audible set for this
    /// `(now, h)`; it is consumed only when its `(grid epoch, alive
    /// version)` stamp still matches the engine — otherwise the set is
    /// recomputed inline, so a stale precompute can cost time but never
    /// change behaviour.
    fn start_transmission(&mut self, h: Handle, pre: &mut Precomp) {
        let (from, airtime, dest, beacon) = {
            let p = self.frames.get_mut(h).expect("pending tx");
            p.on_air = true;
            (
                p.from,
                self.cfg.packet_airtime(p.payload_bytes),
                p.dest,
                matches!(p.frame, Frame::Beacon),
            )
        };
        let tx_dest = match dest {
            Destination::Broadcast => None,
            Destination::Unicast(to) => Some(to),
        };
        self.trace_event(
            from,
            TraceKind::TxStart {
                dest: tx_dest,
                beacon,
            },
        );
        let mut receivers = self.scratch.recv.pop().unwrap_or_default();
        let mut precomputed = false;
        if pre.enabled {
            if let Some((epoch, aver, list)) = pre.map.remove(&(self.now, h)) {
                let cur_epoch = self.grid.as_ref().map_or(0, |g| g.epoch());
                if epoch == cur_epoch && aver == self.alive_ver {
                    receivers.extend(list.iter().map(|&r| (r, false)));
                    self.perf.precomp_used += 1;
                    precomputed = true;
                } else {
                    self.perf.precomp_stale += 1;
                }
            } else {
                self.perf.precomp_missed += 1;
            }
        }
        if !precomputed {
            self.fill_receivers(from, &mut receivers);
        }
        if self.cfg.mac == MacMode::Contention {
            // Collision rule: a receiver hearing two overlapping
            // transmissions loses both copies; a transmitting node cannot
            // receive. The SoA counters stand in for the old scans over
            // `active` (they count exactly the same memberships).
            for (r, corrupted) in receivers.iter_mut() {
                if self.nodes.tx_count[r.index()] > 0 {
                    *corrupted = true;
                }
            }
            // Walk the active list only when some receiver of mine is
            // covered by another transmission (my own counters are not
            // bumped yet, so `rx_cover` means "covered by someone else").
            if receivers
                .iter()
                .any(|&(r, _)| self.nodes.rx_cover[r.index()] > 0)
            {
                for other in self.active.iter_mut() {
                    for (r, corrupted) in other.receivers.iter_mut() {
                        // `receivers` is sorted ascending with unique ids.
                        if let Ok(at) = receivers.binary_search_by_key(r, |&(mr, _)| mr) {
                            *corrupted = true;
                            receivers[at].1 = true;
                            self.stats.collisions += 1;
                        }
                    }
                }
            }
        }
        self.nodes.tx_count[from.index()] += 1;
        for &(r, _) in &receivers {
            self.nodes.rx_cover[r.index()] += 1;
        }
        self.active.push(ActiveTx {
            id: h,
            from,
            receivers,
            airtime,
        });
        self.schedule(self.now + airtime, EventKind::TxEnd(h));
    }
    // lint: end-hot-path

    // ----- sharded precompute plumbing ----------------------------------

    /// Build the plan-feed mirror of every future `MacAttempt` already in
    /// the queue (frames enqueued before the sharded loop was entered —
    /// `on_start` sends, resident-mode `drive` injections, restored
    /// snapshots). From here on [`Ctx::schedule_mac_attempt`] keeps the
    /// feed live.
    fn install_plan_feed(&mut self) {
        let mut feed = BTreeMap::new();
        for (time, _seq, kind) in self.queue.iter() {
            if let EventKind::MacAttempt(h) = kind {
                if let Some(p) = self.frames.get(*h) {
                    if !p.on_air {
                        feed.insert((time, *h), p.from);
                    }
                }
            }
        }
        self.plan_feed = Some(feed);
    }

    /// Ship every planned transmission start within `now + lookahead` to
    /// the shard executor and merge the results into `pre` in
    /// `(time, tie-break-handle)` order. Runs on the commit thread after
    /// the grid refresh, so the world snapshot carries the current
    /// `(grid epoch, alive version)` stamp; anything that invalidates the
    /// snapshot before consumption flips a stamp and the consumer
    /// recomputes inline.
    fn release_plans<E: ShardExecutor + ?Sized>(
        &mut self,
        exec: &mut E,
        pre: &mut Precomp,
        lookahead: SimDuration,
    ) {
        // Discard precomputed sets whose moment passed unconsumed (the
        // frame was dropped, or its attempt resolved without a
        // transmission start).
        while let Some((&key, _)) = pre.map.iter().next() {
            if key.0 >= self.now {
                break;
            }
            pre.map.remove(&key);
        }
        let Some(feed) = self.plan_feed.as_mut() else {
            return;
        };
        let horizon = self.now + lookahead;
        let mut items: Vec<WorkItem> = Vec::new();
        while let Some((&(at, handle), &from)) = feed.iter().next() {
            if at > horizon {
                break;
            }
            feed.remove(&(at, handle));
            if at < self.now {
                continue; // its event already fired
            }
            items.push(WorkItem { at, handle, from });
        }
        if items.is_empty() {
            return;
        }
        let alive = match &self.alive_snap {
            Some((v, arc)) if *v == self.alive_ver => arc.clone(),
            _ => {
                let arc = Arc::new(self.nodes.alive.clone());
                self.alive_snap = Some((self.alive_ver, arc.clone()));
                arc
            }
        };
        let world = AudibleWorld::new(
            self.mobility.clone(),
            self.grid.clone(),
            alive,
            self.cfg.field,
            self.cfg.radio_range,
            self.alive_ver,
        );
        self.perf.precomp_planned += items.len() as u64;
        let (epoch, aver) = world.stamp();
        for r in exec.compute_batch(&world, items) {
            pre.map
                .insert((r.item.at, r.item.handle), (epoch, aver, r.receivers));
        }
    }
}

/// Store of shard-precomputed audible sets keyed `(time, handle)`, each
/// stamped with the `(grid epoch, alive version)` of the world snapshot
/// it was computed from. `enabled: false` (the sequential run loop) makes
/// every lookup a no-op with no counter noise.
struct Precomp {
    enabled: bool,
    map: BTreeMap<(SimTime, Handle), (u64, u64, Vec<NodeId>)>,
}

impl Precomp {
    fn disabled() -> Self {
        Precomp {
            enabled: false,
            map: BTreeMap::new(),
        }
    }

    fn enabled() -> Self {
        Precomp {
            enabled: true,
            map: BTreeMap::new(),
        }
    }
}

/// Outcome handed back to the run loop when an event needs a protocol
/// callback; keeps `Ctx` internals and the protocol object decoupled.
enum Callback<M> {
    None,
    Timer {
        node: NodeId,
        key: u64,
    },
    Deliveries {
        from: NodeId,
        msg: M,
        to: Vec<NodeId>,
    },
    SendFailed {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
}

/// The simulator: a [`Ctx`] plus the protocol under test.
pub struct Simulator<P: Protocol> {
    ctx: Ctx<P::Msg>,
    protocol: P,
}

impl<P: Protocol> Simulator<P> {
    /// Build a simulator over `mobility` plans with the given protocol.
    /// `seed` fixes every random choice of the run.
    pub fn new(cfg: SimConfig, mobility: Vec<SharedMobility>, protocol: P, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid SimConfig: {e}");
        }
        assert!(!mobility.is_empty(), "simulation needs at least one node");
        let n = mobility.len();
        // The legacy `trace_tx` switch routes through the flight recorder.
        let mut trace_cfg = cfg.trace.clone();
        trace_cfg.enabled |= cfg.trace_tx;
        let trace = EventTrace::new(&trace_cfg);
        let mut ctx = Ctx {
            cfg,
            mobility: Arc::new(mobility),
            tables: vec![NeighborTable::default(); n],
            energy: vec![EnergyMeter::default(); n],
            now: SimTime::ZERO,
            rng: SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
            stats: SimStats::default(),
            queue: EventQueue::new(),
            seq: 0,
            next_timer: 0,
            frames: FramePool::new(),
            active: Vec::new(),
            cancelled_timers: BTreeSet::new(),
            stopped: false,
            started: false,
            nodes: NodeSoA::new(n),
            grid: None,
            trace,
            flow_energy: FlowLedger::new(),
            aud: AudCache::new(n),
            scratch: Scratch::default(),
            perf: PerfCounters::default(),
            alive_ver: 0,
            plan_feed: None,
            alive_snap: None,
        };
        if ctx.cfg.neighbor_index == NeighborIndex::Grid {
            let vmax = ctx
                .mobility
                .iter()
                .map(|m| m.max_speed())
                .fold(0.0_f64, f64::max);
            let positions: Vec<Point> = ctx.mobility.iter().map(|m| m.position_at(0.0)).collect();
            ctx.grid = Some(Arc::new(SpatialGrid::build(
                ctx.cfg.field,
                ctx.cfg.radio_range,
                &positions,
                vmax,
                0.5 * ctx.cfg.radio_range,
                SimTime::ZERO,
            )));
        }
        Self::schedule_faults(&mut ctx, seed);
        Simulator { ctx, protocol }
    }

    /// Turn the fault plan into concrete Crash/Recover events. Random
    /// crashes draw node choices and times from a generator derived from
    /// the run seed but *distinct* from the event RNG, so enabling them
    /// does not perturb MAC backoff draws of the fault-free prefix.
    fn schedule_faults(ctx: &mut Ctx<P::Msg>, seed: u64) {
        let plan = ctx.cfg.faults.clone();
        let n = ctx.mobility.len();
        let schedule_one = |ctx: &mut Ctx<P::Msg>,
                            node: NodeId,
                            at: SimDuration,
                            recover_after: Option<SimDuration>| {
            let at = SimTime::ZERO + at;
            ctx.schedule(at, EventKind::Crash(node));
            if let Some(r) = recover_after {
                ctx.schedule(at + r, EventKind::Recover(node));
            }
        };
        for c in &plan.crashes {
            assert!(
                (c.node as usize) < n,
                "fault plan crashes node {} but the network has {n} nodes",
                c.node
            );
            schedule_one(ctx, NodeId(c.node), c.at, c.recover_after);
        }
        if let Some(rc) = plan.random_crashes {
            let mut frng = SmallRng::seed_from_u64(seed ^ 0xC0FF_EE00_5EED_FA17);
            let m = ((n as f64) * rc.fraction).round() as usize;
            let m = m.min(n);
            // Partial Fisher–Yates: the first `m` entries are a uniform
            // sample of distinct nodes.
            let mut ids: Vec<u32> = (0..n as u32).collect();
            for i in 0..m {
                let j = frng.gen_range(i..n);
                ids.swap(i, j);
            }
            let (lo, hi) = (rc.from.as_nanos(), rc.until.as_nanos());
            for &node in &ids[..m] {
                let at = SimDuration::from_nanos(frng.gen_range(lo..=hi.max(lo)));
                schedule_one(ctx, NodeId(node), at, rc.recover_after);
            }
        }
        if let Some(ch) = plan.churn {
            // Churn gets its own generator (distinct from both the event
            // RNG and the random-crash generator), fully consumed here:
            // enabling churn never perturbs any other random draw, and the
            // whole schedule is pre-expanded so snapshots carry it inside
            // the ordinary event queue.
            let mut crng = SmallRng::seed_from_u64(seed ^ 0xCAFE_F00D_5EED_0C42);
            let m = (((n as f64) * ch.fraction).round() as usize).min(n);
            let mut ids: Vec<u32> = (0..n as u32).collect();
            for i in 0..m {
                let j = crng.gen_range(i..n);
                ids.swap(i, j);
            }
            let exp_s = |rng: &mut SmallRng, mean: f64| -> f64 {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -mean * u.ln()
            };
            let until_s = ch.until.as_secs_f64();
            for &node in &ids[..m] {
                let mut t = ch.from.as_secs_f64() + exp_s(&mut crng, ch.mean_up_s);
                while t <= until_s {
                    ctx.schedule(SimTime::from_secs_f64(t), EventKind::Leave(NodeId(node)));
                    // Departures are clipped to the churn window; the
                    // matching rejoin is not, so every node that leaves
                    // comes back and the network heals after the window.
                    let back = t + exp_s(&mut crng, ch.mean_down_s);
                    ctx.schedule(
                        SimTime::from_secs_f64(back),
                        EventKind::Rejoin(NodeId(node)),
                    );
                    t = back + exp_s(&mut crng, ch.mean_up_s);
                }
            }
        }
    }

    /// Immutable view of the run state.
    pub fn ctx(&self) -> &Ctx<P::Msg> {
        &self.ctx
    }

    /// Mutable view (for pre-run setup such as warming neighbour tables).
    pub fn ctx_mut(&mut self) -> &mut Ctx<P::Msg> {
        &mut self.ctx
    }

    /// The protocol instance (carrying its collected results).
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// Split borrow: mutable protocol alongside the (immutable) context.
    /// Lets post-run accounting (`KnnProtocol::finish`) and trace replay
    /// run without consuming the simulator.
    pub fn split_mut(&mut self) -> (&mut P, &Ctx<P::Msg>) {
        (&mut self.protocol, &self.ctx)
    }

    /// Drive the protocol from outside the event loop: mutable protocol
    /// alongside the mutable context, for between-epoch interventions such
    /// as streaming new requests into a resident run. The closure runs at
    /// the simulator's current time; anything it schedules (timers, sends)
    /// executes on the next `run_until`.
    pub fn drive<R>(&mut self, f: impl FnOnce(&mut P, &mut Ctx<P::Msg>) -> R) -> R {
        f(&mut self.protocol, &mut self.ctx)
    }

    /// Consume the simulator, returning the protocol and final context.
    pub fn into_parts(self) -> (P, Ctx<P::Msg>) {
        (self.protocol, self.ctx)
    }

    /// Seed every neighbour table from ground truth as if one clean beacon
    /// round had already happened. Protocols can then route immediately at
    /// t=0 instead of being blind for the first beacon interval.
    pub fn warm_neighbor_tables(&mut self) {
        let n = self.ctx.node_count();
        let mut cand: Vec<u32> = Vec::new();
        for i in 0..n {
            let entries = {
                let me = self.ctx.position(NodeId(i as u32));
                let range2 = self.ctx.cfg.radio_range * self.ctx.cfg.radio_range;
                let neighbor_of = |j: usize| -> Option<Neighbor> {
                    if j == i {
                        return None;
                    }
                    let p = self.ctx.position(NodeId(j as u32));
                    (me.dist_sq(p) <= range2).then(|| Neighbor {
                        id: NodeId(j as u32),
                        position: p,
                        speed: self.ctx.speed(NodeId(j as u32)),
                        heard_at: SimTime::ZERO,
                    })
                };
                if let Some(grid) = &self.ctx.grid {
                    cand.clear();
                    grid.candidates_near(me, self.ctx.cfg.radio_range, self.ctx.now, &mut cand);
                    cand.sort_unstable();
                    cand.iter()
                        .filter_map(|&j| neighbor_of(j as usize))
                        .collect::<Vec<_>>()
                } else {
                    (0..n).filter_map(neighbor_of).collect::<Vec<_>>()
                }
            };
            let table = &mut self.ctx.tables[i];
            for e in entries {
                table.record(e);
            }
        }
    }

    // lint: hot-path (event loop, dispatch, and frame delivery: every
    // simulated event flows through here)
    /// One-time startup: seed periodic beacons with random phases and
    /// deliver the protocol's `on_start`. Idempotent — the first of
    /// [`Simulator::run`]/[`Simulator::run_until`] triggers it, and a
    /// restored simulator (whose snapshot recorded a completed start)
    /// never re-runs it.
    pub fn start(&mut self) {
        if self.ctx.started {
            return;
        }
        self.ctx.started = true;
        if self.ctx.cfg.beacon_interval > SimDuration::ZERO && !self.ctx.cfg.oracle_neighbors {
            for i in 0..self.ctx.node_count() {
                let phase = SimDuration::from_nanos(
                    self.ctx
                        .rng
                        .gen_range(0..=self.ctx.cfg.beacon_interval.as_nanos()),
                );
                self.ctx
                    .schedule(SimTime::ZERO + phase, EventKind::Beacon(NodeId(i as u32)));
            }
        }
        self.protocol.on_start(&mut self.ctx);
    }

    /// Run until the event queue drains, simulated time would pass
    /// `until`, or the protocol calls [`Ctx::stop`]. Returns the stop
    /// time.
    ///
    /// Events with time beyond `until` stay queued, so the run is
    /// *resumable*: calling `run_until` repeatedly with increasing bounds
    /// produces exactly the run a single larger bound would have — the
    /// property the resident service mode and snapshot/restore build on.
    /// Note the bound is the caller's, not `SimConfig::time_limit`
    /// (which only [`Simulator::run`] applies).
    pub fn run_until(&mut self, until: SimTime) -> SimTime {
        self.start();
        let mut pre = Precomp::disabled();
        loop {
            if self.ctx.stopped {
                break;
            }
            let Some((head_time, _)) = self.ctx.queue.peek_key() else {
                break;
            };
            if head_time > until {
                break;
            }
            let Some((time, _seq, kind)) = self.ctx.queue.pop() else {
                break;
            };
            self.ctx.now = time;
            self.ctx.refresh_grid_if_stale();
            self.ctx.stats.events += 1;
            let cb = self.dispatch(kind, &mut pre);
            self.handle_callback(cb);
        }
        self.ctx.now
    }

    /// [`Simulator::run_until`] with the audible-set precompute shipped to
    /// a shard executor (DESIGN.md §15, [`crate::shard`]).
    ///
    /// The event loop itself stays sequential — every event commits on
    /// this thread in `(time, seq)` order with the single run RNG — but
    /// each event first releases the transmission starts planned within
    /// the conservative lookahead (header airtime + one backoff slot, the
    /// minimum schedule-to-attempt delay the MAC constants allow) to
    /// `exec`, whose shard workers compute their audible sets from an
    /// immutable world snapshot. Results merge back in `(time, handle)`
    /// order and are consumed only while their `(grid epoch, alive
    /// version)` stamp is current, so the run is **bit-identical** to
    /// [`Simulator::run_until`] for any executor and any shard count —
    /// the property `shard_equiv` proptests and the `scale_bench`
    /// fingerprint gate enforce.
    pub fn run_until_sharded<E: ShardExecutor + ?Sized>(
        &mut self,
        until: SimTime,
        exec: &mut E,
    ) -> SimTime {
        self.start();
        self.ctx.install_plan_feed();
        let lookahead = SimDuration::airtime(self.ctx.cfg.header_bytes, self.ctx.cfg.bits_per_sec)
            + self.ctx.cfg.backoff_window;
        let mut pre = Precomp::enabled();
        loop {
            if self.ctx.stopped {
                break;
            }
            let Some((head_time, _)) = self.ctx.queue.peek_key() else {
                break;
            };
            if head_time > until {
                break;
            }
            let Some((time, _seq, kind)) = self.ctx.queue.pop() else {
                break;
            };
            self.ctx.now = time;
            self.ctx.refresh_grid_if_stale();
            self.ctx.release_plans(exec, &mut pre, lookahead);
            self.ctx.stats.events += 1;
            let cb = self.dispatch(kind, &mut pre);
            self.handle_callback(cb);
        }
        self.ctx.plan_feed = None;
        self.ctx.alive_snap = None;
        self.ctx.now
    }

    /// Deliver one dispatch outcome to the protocol.
    fn handle_callback(&mut self, cb: Callback<P::Msg>) {
        match cb {
            Callback::None => {}
            Callback::Timer { node, key } => {
                self.protocol.on_timer(node, key, &mut self.ctx);
            }
            Callback::Deliveries { from, msg, to } => {
                for &node in &to {
                    self.protocol.on_message(node, from, &msg, &mut self.ctx);
                    if self.ctx.stopped {
                        break;
                    }
                }
                // Delivery list consumed: recycle the allocation.
                let mut buf = to;
                buf.clear();
                self.ctx.scratch.succ.push(buf);
            }
            Callback::SendFailed { from, to, msg } => {
                self.protocol.on_send_failed(from, to, &msg, &mut self.ctx);
            }
        }
    }

    /// Run until the event queue drains, the configured time limit is
    /// reached, or the protocol calls [`Ctx::stop`]. Returns the stop time.
    pub fn run(&mut self) -> SimTime {
        let limit = SimTime::ZERO + self.ctx.cfg.time_limit;
        self.run_until(limit)
    }

    /// Handle one event inside `Ctx`, returning any required protocol
    /// callback.
    fn dispatch(&mut self, kind: EventKind, pre: &mut Precomp) -> Callback<P::Msg> {
        let ctx = &mut self.ctx;
        // Per-event-kind breakdown for the profiling harness. The counts
        // are variant-invariant (the event sequence is bit-identical across
        // index variants), so they are safe inside the fingerprinted stats.
        match kind {
            EventKind::MacAttempt(_) => ctx.stats.ev_mac_attempt += 1,
            EventKind::TxEnd(_) => ctx.stats.ev_tx_end += 1,
            EventKind::Timer { .. } => ctx.stats.ev_timer += 1,
            EventKind::Beacon(_) => ctx.stats.ev_beacon += 1,
            EventKind::Crash(_)
            | EventKind::Recover(_)
            | EventKind::Leave(_)
            | EventKind::Rejoin(_) => ctx.stats.ev_lifecycle += 1,
        }
        match kind {
            EventKind::Crash(node) => {
                if ctx.nodes.alive[node.index()] {
                    ctx.nodes.alive[node.index()] = false;
                    ctx.nodes.phase[node.index()] = NodePhase::Down;
                    ctx.alive_ver += 1;
                    ctx.stats.nodes_crashed += 1;
                    ctx.trace_event(node, TraceKind::Crash);
                }
                Callback::None
            }
            EventKind::Recover(node) => {
                // Only fail-stop crashes reboot; energy deaths are final
                // (there is no battery left to boot with).
                let exhausted = ctx
                    .cfg
                    .faults
                    .energy_budget_j
                    .is_some_and(|b| ctx.energy[node.index()].total_j() >= b);
                if !ctx.nodes.alive[node.index()] && !exhausted {
                    ctx.nodes.alive[node.index()] = true;
                    ctx.nodes.phase[node.index()] = NodePhase::Up;
                    ctx.alive_ver += 1;
                    ctx.stats.nodes_recovered += 1;
                    ctx.trace_event(node, TraceKind::Recover);
                }
                Callback::None
            }
            EventKind::Leave(node) => {
                if ctx.nodes.alive[node.index()] {
                    ctx.nodes.alive[node.index()] = false;
                    ctx.nodes.phase[node.index()] = NodePhase::Down;
                    ctx.alive_ver += 1;
                    ctx.stats.nodes_left += 1;
                    ctx.trace_event(node, TraceKind::Leave);
                }
                Callback::None
            }
            EventKind::Rejoin(node) => {
                // Energy deaths are final here too: a churned-out node
                // whose battery crossed the budget stays down for good.
                let exhausted = ctx
                    .cfg
                    .faults
                    .energy_budget_j
                    .is_some_and(|b| ctx.energy[node.index()].total_j() >= b);
                let dead = ctx.nodes.phase[node.index()] == NodePhase::Dead;
                if !ctx.nodes.alive[node.index()] && !exhausted && !dead {
                    if ctx.cfg.faults.churn.is_some_and(|c| c.state_loss) {
                        // Amnesiac rejoin: the node's own neighbour table
                        // is gone; it re-learns from beacons like a
                        // factory-fresh node. Other nodes' tables age its
                        // old entry out on their own.
                        ctx.tables[node.index()].clear();
                    }
                    ctx.nodes.alive[node.index()] = true;
                    ctx.nodes.phase[node.index()] = NodePhase::Up;
                    ctx.alive_ver += 1;
                    ctx.stats.nodes_rejoined += 1;
                    ctx.trace_event(node, TraceKind::Rejoin);
                }
                Callback::None
            }
            EventKind::Beacon(node) => {
                // A dead node stays silent but keeps its beacon slot so it
                // resumes advertising right after a recovery.
                if ctx.nodes.alive[node.index()] {
                    ctx.enqueue_frame(
                        node,
                        Destination::Broadcast,
                        Frame::Beacon,
                        ctx.cfg.beacon_bytes,
                        None,
                    );
                    ctx.stats.beacons_sent += 1;
                }
                let next = ctx.now + ctx.cfg.beacon_interval;
                ctx.schedule(next, EventKind::Beacon(node));
                Callback::None
            }
            EventKind::Timer { node, id, key } => {
                if ctx.cancelled_timers.remove(&id.0) {
                    Callback::None
                } else if !ctx.nodes.alive[node.index()] {
                    // A dead node's CPU is off: its timers never fire. (If
                    // it recovers the timers stay lost — protocols must
                    // tolerate that, which is what the token watchdog and
                    // sink retry in diknn-core exist for.)
                    ctx.stats.timers_suppressed += 1;
                    ctx.trace_verbose(node, TraceKind::TimerSuppressed { key });
                    Callback::None
                } else {
                    ctx.trace_verbose(node, TraceKind::TimerFired { key });
                    Callback::Timer { node, key }
                }
            }
            EventKind::MacAttempt(h) => {
                let Some((from, on_air)) = ctx.frames.get(h).map(|p| (p.from, p.on_air)) else {
                    return Callback::None; // frame already resolved; handle is stale
                };
                if !ctx.nodes.alive[from.index()] {
                    // Sender died while the frame sat in the MAC queue: the
                    // frame vanishes. No SendFailed — a dead protocol
                    // instance cannot react, that is the point.
                    ctx.frames.remove(h);
                    ctx.stats.frames_dropped_dead += 1;
                    ctx.trace_verbose(
                        from,
                        TraceKind::Drop {
                            from: None,
                            reason: DropReason::DeadSender,
                        },
                    );
                    return Callback::None;
                }
                if on_air {
                    return Callback::None; // already on the air
                }
                if ctx.channel_busy(from) {
                    let p = ctx.frames.get_mut(h).expect("pending tx");
                    p.backoffs += 1;
                    if p.backoffs > ctx.cfg.max_backoffs {
                        ctx.stats.mac_drops += 1;
                        let p = ctx.frames.remove(h).expect("pending tx");
                        ctx.trace_verbose(
                            p.from,
                            TraceKind::Drop {
                                from: None,
                                reason: DropReason::MacBusy,
                            },
                        );
                        if let (Destination::Unicast(to), Frame::Proto(msg)) = (p.dest, p.frame) {
                            return Callback::SendFailed {
                                from: p.from,
                                to,
                                msg,
                            };
                        }
                        return Callback::None;
                    }
                    let backoffs = p.backoffs;
                    let delay = ctx.random_backoff(backoffs);
                    let at = ctx.now + delay;
                    ctx.schedule_mac_attempt(at, h, from);
                    Callback::None
                } else {
                    ctx.start_transmission(h, pre);
                    Callback::None
                }
            }
            EventKind::TxEnd(h) => self.finish_transmission(h),
        }
    }

    fn finish_transmission(&mut self, h: Handle) -> Callback<P::Msg> {
        let ctx = &mut self.ctx;
        let pos = ctx
            .active
            .iter()
            .position(|a| a.id == h)
            .expect("active tx");
        let ActiveTx {
            receivers, airtime, ..
        } = ctx.active.swap_remove(pos);
        let PendingTx {
            from,
            dest,
            frame,
            payload_bytes,
            retries,
            flow,
            ..
        } = ctx.frames.remove(h).expect("pending tx");
        // The air went quiet either way: release the carrier-sense
        // counters bumped at transmission start (dead-sender path too).
        ctx.nodes.tx_count[from.index()] -= 1;
        for &(r, _) in &receivers {
            ctx.nodes.rx_cover[r.index()] -= 1;
        }
        if !ctx.nodes.alive[from.index()] {
            // Sender crashed mid-air: the frame is truncated garbage. No
            // energy is charged (the crash froze the radio) and nothing is
            // delivered or retried.
            ctx.stats.frames_dropped_dead += 1;
            ctx.trace_verbose(
                from,
                TraceKind::Drop {
                    from: None,
                    reason: DropReason::DeadSender,
                },
            );
            let mut buf = receivers;
            buf.clear();
            ctx.scratch.recv.push(buf);
            return Callback::None;
        }
        let class = match frame {
            Frame::Beacon => TrafficClass::Beacon,
            Frame::Proto(_) => TrafficClass::Protocol,
        };

        // Energy: the sender pays tx airtime; audible nodes pay rx airtime.
        // Receivers that are not the addressee of a unicast frame abort
        // after decoding the MAC header (standard 802.15.4 address
        // filtering), so they pay header airtime only. Broadcasts and
        // corrupted copies are received in full — the radio cannot know.
        let (tx_p, rx_p) = (ctx.cfg.tx_power_w, ctx.cfg.rx_power_w);
        let mut flow_j = ctx.energy[from.index()].charge_tx(tx_p, airtime, class);
        ctx.trace_energy(from);
        let header_airtime =
            SimDuration::airtime(ctx.cfg.header_bytes, ctx.cfg.bits_per_sec).min(airtime);
        for &(r, corrupted) in &receivers {
            if !ctx.nodes.alive[r.index()] {
                continue; // died mid-reception: radio already off
            }
            let rx_time = match dest {
                Destination::Unicast(to) if r != to && !corrupted => header_airtime,
                _ => airtime,
            };
            flow_j += ctx.energy[r.index()].charge_rx(rx_p, rx_time, class);
            ctx.trace_energy(r);
        }
        if let Some(flow) = flow {
            ctx.flow_energy.charge(flow, flow_j);
        }
        ctx.stats.tx_frames += 1;
        ctx.stats.tx_bytes += (ctx.cfg.header_bytes + payload_bytes) as u64;
        if class == TrafficClass::Protocol {
            ctx.stats.tx_protocol_frames += 1;
        }

        // Energy-budget deaths: a node whose battery crossed the budget on
        // this frame (sender or any receiver) dies permanently, before any
        // delivery is processed.
        if let Some(budget) = ctx.cfg.faults.energy_budget_j {
            if ctx.nodes.alive[from.index()] && ctx.energy[from.index()].total_j() >= budget {
                ctx.nodes.alive[from.index()] = false;
                ctx.nodes.phase[from.index()] = NodePhase::Dead;
                ctx.alive_ver += 1;
                ctx.stats.energy_deaths += 1;
                ctx.trace_event(from, TraceKind::EnergyDeath);
            }
            for &(r, _) in &receivers {
                if ctx.nodes.alive[r.index()] && ctx.energy[r.index()].total_j() >= budget {
                    ctx.nodes.alive[r.index()] = false;
                    ctx.nodes.phase[r.index()] = NodePhase::Dead;
                    ctx.alive_ver += 1;
                    ctx.stats.energy_deaths += 1;
                    ctx.trace_event(r, TraceKind::EnergyDeath);
                }
            }
        }

        // Work out who actually got a clean copy. Per-receiver drop order:
        // dead radio → collision corruption → jamming zone → link-loss
        // model (uniform or Gilbert–Elliott). Receivers are visited in
        // `receivers` order (ascending id), so every RNG draw is
        // deterministic.
        let t_now = ctx.now.since(SimTime::ZERO);
        let mut successes = ctx.scratch.succ.pop().unwrap_or_default();
        debug_assert!(successes.is_empty());
        for &(r, corrupted) in &receivers {
            if !ctx.nodes.alive[r.index()] {
                continue;
            }
            if corrupted {
                // Already counted in stats.collisions.
                ctx.trace_verbose(r, TraceKind::Collision { from });
                continue;
            }
            if !ctx.cfg.faults.jam_zones.is_empty() {
                // Max loss over the time-active zones containing the
                // receiver, computed inline per receiver (allocation-free).
                // The old grid-prefiltered map produced exactly this value
                // for exactly these receivers — the grid candidate set was
                // a superset sharing the same containment predicate — so
                // the RNG draw sequence is unchanged.
                let pos = ctx.position(r);
                let jam = ctx
                    .cfg
                    .faults
                    .jam_zones
                    .iter()
                    .filter(|z| z.from <= t_now && t_now <= z.until && z.region.contains(pos))
                    .map(|z| z.loss)
                    .fold(0.0_f64, f64::max);
                if jam > 0.0 && ctx.rng.gen::<f64>() < jam {
                    ctx.stats.frames_jammed += 1;
                    ctx.trace_verbose(
                        r,
                        TraceKind::Drop {
                            from: Some(from),
                            reason: DropReason::Jammed,
                        },
                    );
                    continue;
                }
            }
            match ctx.cfg.faults.link_loss {
                LinkLossModel::Uniform => {
                    if ctx.cfg.loss_rate > 0.0 && ctx.rng.gen::<f64>() < ctx.cfg.loss_rate {
                        ctx.stats.random_losses += 1;
                        ctx.trace_verbose(
                            r,
                            TraceKind::Drop {
                                from: Some(from),
                                reason: DropReason::RandomLoss,
                            },
                        );
                        continue;
                    }
                }
                LinkLossModel::GilbertElliott(ge) => {
                    // Step this receiver's two-state chain, then draw the
                    // loss for the resulting state.
                    let bad = &mut ctx.nodes.ge_bad[r.index()];
                    let flip = ctx.rng.gen::<f64>();
                    *bad = if *bad {
                        flip >= ge.p_bg
                    } else {
                        flip < ge.p_gb
                    };
                    let p = if *bad { ge.bad_loss } else { ge.good_loss };
                    if p > 0.0 && ctx.rng.gen::<f64>() < p {
                        ctx.stats.burst_losses += 1;
                        ctx.trace_verbose(
                            r,
                            TraceKind::Drop {
                                from: Some(from),
                                reason: DropReason::BurstLoss,
                            },
                        );
                        continue;
                    }
                }
            }
            successes.push(r);
        }
        successes.sort_unstable();
        // Receiver list fully consumed: recycle the allocation.
        let mut recv_buf = receivers;
        recv_buf.clear();
        ctx.scratch.recv.push(recv_buf);

        match frame {
            Frame::Beacon => {
                // Beacons refresh the receivers' neighbour tables with the
                // sender's position at *transmission end* (≈ start; airtime
                // is sub-millisecond).
                let entry_pos = ctx.position(from);
                let entry_speed = ctx.speed(from);
                for &r in &successes {
                    ctx.stats.rx_deliveries += 1;
                    ctx.trace_verbose(r, TraceKind::RxDeliver { from });
                    ctx.tables[r.index()].record(Neighbor {
                        id: from,
                        position: entry_pos,
                        speed: entry_speed,
                        heard_at: ctx.now,
                    });
                }
                successes.clear();
                ctx.scratch.succ.push(successes);
                Callback::None
            }
            Frame::Proto(msg) => match dest {
                Destination::Broadcast => {
                    ctx.stats.rx_deliveries += successes.len() as u64;
                    for &r in &successes {
                        ctx.trace_verbose(r, TraceKind::RxDeliver { from });
                    }
                    if successes.is_empty() {
                        ctx.scratch.succ.push(successes);
                        Callback::None
                    } else {
                        Callback::Deliveries {
                            from,
                            msg,
                            to: successes,
                        }
                    }
                }
                Destination::Unicast(to) => {
                    if successes.contains(&to) {
                        ctx.stats.rx_deliveries += 1;
                        ctx.trace_verbose(to, TraceKind::RxDeliver { from });
                        // Reuse the successes buffer instead of a fresh
                        // one-element allocation on every clean unicast.
                        successes.clear();
                        successes.push(to);
                        Callback::Deliveries {
                            from,
                            msg,
                            to: successes,
                        }
                    } else if retries < ctx.cfg.unicast_retries {
                        // ARQ: put the frame back (a fresh pool slot) and
                        // try again shortly.
                        ctx.stats.arq_retries += 1;
                        let retries = retries + 1;
                        let new_h = ctx.frames.insert(PendingTx {
                            from,
                            dest,
                            frame: Frame::Proto(msg),
                            payload_bytes,
                            backoffs: 0,
                            retries,
                            flow,
                            on_air: false,
                        });
                        let delay = ctx.random_backoff(retries);
                        let at = ctx.now + delay;
                        ctx.schedule_mac_attempt(at, new_h, from);
                        successes.clear();
                        ctx.scratch.succ.push(successes);
                        Callback::None
                    } else {
                        ctx.stats.unicast_failures += 1;
                        ctx.trace_verbose(
                            from,
                            TraceKind::Drop {
                                from: None,
                                reason: DropReason::UnicastFailed,
                            },
                        );
                        successes.clear();
                        ctx.scratch.succ.push(successes);
                        Callback::SendFailed { from, to, msg }
                    }
                }
            },
        }
    }
    // lint: end-hot-path
}

// ----- snapshot / restore -----------------------------------------------

impl<M: Clone> Ctx<M> {
    /// FNV-1a fingerprint of the run configuration, via its `Debug`
    /// rendering (every `SimConfig` field derives `Debug`, so any config
    /// difference shows up here). The config itself is *not* serialized:
    /// restore re-supplies it and this check catches a mismatch.
    fn config_fingerprint(&self) -> u64 {
        diknn_snap::fingerprint(format!("{:?}", self.cfg).as_bytes())
    }

    /// Fingerprint of the (unserializable) mobility plans: exact position
    /// bits of every node sampled at t = 0, now, and now + 1 s, plus each
    /// plan's max speed. Restore re-supplies the plans and rejects ones
    /// that disagree at these probes.
    fn mobility_fingerprint(&self) -> u64 {
        let now_s = self.now.as_secs_f64();
        let mut bytes = Vec::with_capacity(self.mobility.len() * 56);
        for m in self.mobility.iter() {
            for t in [0.0, now_s, now_s + 1.0] {
                let p = m.position_at(t);
                bytes.extend_from_slice(&p.x.to_bits().to_le_bytes());
                bytes.extend_from_slice(&p.y.to_bits().to_le_bytes());
            }
            bytes.extend_from_slice(&m.max_speed().to_bits().to_le_bytes());
        }
        diknn_snap::fingerprint(&bytes)
    }

    /// Rebuild the spatial grid from scratch at the current time. Grid
    /// contents are *not* serialized: grid answers are exact-checked
    /// candidate supersets, so a freshly built grid yields bit-identical
    /// behaviour regardless of the original's refresh history.
    fn rebuild_grid(&mut self) {
        if self.cfg.neighbor_index == NeighborIndex::Grid {
            let vmax = self
                .mobility
                .iter()
                .map(|m| m.max_speed())
                .fold(0.0_f64, f64::max);
            let t = self.now.as_secs_f64();
            let positions: Vec<Point> = self.mobility.iter().map(|m| m.position_at(t)).collect();
            self.grid = Some(Arc::new(SpatialGrid::build(
                self.cfg.field,
                self.cfg.radio_range,
                &positions,
                vmax,
                0.5 * self.cfg.radio_range,
                self.now,
            )));
        } else {
            self.grid = None;
        }
    }

    /// Encode every piece of mutable engine state except `now` (written by
    /// [`Simulator::snapshot`] ahead of the mobility fingerprint), `cfg`
    /// and `mobility` (fingerprint-checked), and the grid (rebuilt).
    fn snap_engine_state(&self, w: &mut SnapWriter)
    where
        M: Snap,
    {
        self.tables.snap(w);
        self.energy.snap(w);
        self.rng.state().snap(w);
        self.stats.snap(w);
        // The heap's internal layout is not canonical; serialize events in
        // (time, seq) order so equal states produce equal bytes.
        let mut events: Vec<(SimTime, u64, &EventKind)> = self.queue.iter().collect();
        events.sort_unstable_by_key(|&(t, s, _)| (t, s));
        w.put_u64(events.len() as u64);
        for (t, s, k) in events {
            t.snap(w);
            s.snap(w);
            k.snap(w);
        }
        self.seq.snap(w);
        self.next_timer.snap(w);
        self.frames.snap(w);
        self.active.snap(w);
        self.cancelled_timers.snap(w);
        self.stopped.snap(w);
        self.started.snap(w);
        self.nodes.snap(w);
        self.trace.snap(w);
        self.flow_energy.snap(w);
    }

    /// Overwrite the mutable engine state from a snapshot stream (the
    /// exact inverse of [`Ctx::snap_engine_state`]).
    fn restore_engine_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>
    where
        M: Snap,
    {
        self.tables = Vec::unsnap(r)?;
        self.energy = Vec::unsnap(r)?;
        self.rng = SmallRng::from_state(<[u64; 4]>::unsnap(r)?);
        self.stats = SimStats::unsnap(r)?;
        let n = r.take_len()?;
        let mut queue = EventQueue::with_capacity(n);
        for _ in 0..n {
            let time = SimTime::unsnap(r)?;
            let seq = u64::unsnap(r)?;
            let kind = EventKind::unsnap(r)?;
            queue.push(time, seq, kind);
        }
        self.queue = queue;
        self.seq = u64::unsnap(r)?;
        self.next_timer = u64::unsnap(r)?;
        self.frames = FramePool::unsnap(r)?;
        self.active = Vec::unsnap(r)?;
        self.cancelled_timers = BTreeSet::unsnap(r)?;
        self.stopped = bool::unsnap(r)?;
        self.started = bool::unsnap(r)?;
        self.nodes = NodeSoA::unsnap(r)?;
        self.trace = EventTrace::unsnap(r)?;
        self.flow_energy = FlowLedger::unsnap(r)?;
        let n = self.mobility.len();
        if self.tables.len() != n
            || self.energy.len() != n
            || self.nodes.alive.len() != n
            || self.nodes.phase.len() != n
            || self.nodes.ge_bad.len() != n
            || self.nodes.tx_count.len() != n
            || self.nodes.rx_cover.len() != n
        {
            return Err(SnapError::Corrupt(
                "snapshot node count disagrees with the supplied mobility plans",
            ));
        }
        // Derived state: the audible cache is rebuilt lazily (epoch
        // sentinel never matches a fresh grid), perf counters restart,
        // and the shard plumbing (alive version, plan feed, alive-bitmap
        // snapshot) resets — a sharded resume re-plans from the restored
        // queue via `install_plan_feed`.
        self.aud = AudCache::new(n);
        self.perf = PerfCounters::default();
        self.alive_ver = 0;
        self.plan_feed = None;
        self.alive_snap = None;
        Ok(())
    }
}

impl<P: Protocol> Simulator<P>
where
    P: SnapState,
    P::Msg: Snap,
{
    /// Serialize the full mutable run state — engine and protocol — into a
    /// self-contained byte stream.
    ///
    /// Static inputs deliberately stay out of the stream and must be
    /// re-supplied to [`Simulator::restore`]: the `SimConfig`, the mobility
    /// plans (both fingerprint-checked) and the protocol's own static
    /// configuration. What *is* captured: clocks, RNG streams, the event
    /// queue (faults, churn, beacons, in-flight frames, timers), neighbour
    /// tables, energy meters, stats, liveness/lifecycle, the flight
    /// recorder, and the protocol's mutable state. The restore-equivalence
    /// law — `run(2T)` is bit-identical to `run(T)` + snapshot + restore +
    /// `run(2T)` — is enforced by tests in `diknn-workloads`.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        diknn_snap::write_header(&mut w, SNAP_VERSION);
        w.put_u64(self.ctx.config_fingerprint());
        self.ctx.now.snap(&mut w);
        w.put_u64(self.ctx.mobility_fingerprint());
        self.ctx.snap_engine_state(&mut w);
        self.protocol.snap_state(&mut w);
        w.into_bytes()
    }

    /// Rebuild a simulator from a [`Simulator::snapshot`] stream.
    ///
    /// `cfg` and `mobility` must be the ones the snapshotted run was built
    /// with (fingerprint-enforced); `protocol` must be a freshly
    /// constructed instance with the same static configuration — its
    /// mutable state is overwritten from the stream. Panics (like
    /// [`Simulator::new`]) if `cfg` is invalid or `mobility` is empty;
    /// all stream problems are reported as errors.
    pub fn restore(
        bytes: &[u8],
        cfg: SimConfig,
        mobility: Vec<SharedMobility>,
        protocol: P,
    ) -> Result<Self, SnapError> {
        let mut sim = Simulator::new(cfg, mobility, protocol, 0);
        let mut r = SnapReader::new(bytes);
        diknn_snap::read_header(&mut r, SNAP_VERSION)?;
        if r.take_u64()? != sim.ctx.config_fingerprint() {
            return Err(SnapError::FingerprintMismatch("SimConfig"));
        }
        sim.ctx.now = SimTime::unsnap(&mut r)?;
        if r.take_u64()? != sim.ctx.mobility_fingerprint() {
            return Err(SnapError::FingerprintMismatch("mobility plans"));
        }
        sim.ctx.restore_engine_state(&mut r)?;
        sim.protocol.restore_state(&mut r)?;
        r.finish()?;
        sim.ctx.rebuild_grid();
        Ok(sim)
    }
}

// Compile-time audit that a whole simulator run can be moved to a worker
// thread: every field of `Ctx` (mobility `Arc<dyn Mobility>` — the trait
// requires `Send + Sync` — RNG, queue, trace ring) is `Send`, so
// `Simulator<P>: Send` whenever the protocol and its messages are. The
// `ParallelSweep` executor in `diknn-workloads` relies on this.
#[allow(dead_code)]
fn assert_simulator_is_send<P>()
where
    P: Protocol + Send,
    P::Msg: Send,
{
    fn is_send<T: Send>() {}
    is_send::<Simulator<P>>();
    is_send::<Ctx<P::Msg>>();
}
