//! The flight recorder: a typed, ring-buffered event trace.
//!
//! End-state metrics (accuracy, energy, status counts) cannot distinguish a
//! correct execution from a wrong-but-lucky one. The flight recorder makes
//! *protocol behaviour over time* machine-checkable, in the same spirit as
//! the ns-2 packet traces the paper's methodology relies on: every
//! protocol-relevant event is recorded as a [`TraceEvent`] stamped with
//! [`SimTime`] + [`NodeId`], and the stream can be
//!
//! * replayed by an invariant checker (`diknn-workloads::invariants`), and
//! * serialised to a deterministic line format for golden-trace files
//!   ([`EventTrace::render`]).
//!
//! Two event families share the one stream:
//!
//! * **Engine events** ([`TraceKind`] radio/timer/fault variants) recorded
//!   by the event engine itself: transmission starts, deliveries,
//!   collisions, drops (with a [`DropReason`]), timer firings and
//!   suppressions, crashes, recoveries, and energy readings under a budget.
//! * **Protocol events** ([`ProtoEvent`], wrapped in [`TraceKind::Proto`])
//!   emitted by protocol implementations through the `TraceSink` trait in
//!   `diknn-core`: query issue, itinerary handoffs, boundary changes,
//!   sector completion, token re-issue epochs, sink merges, final answers.
//!
//! Recording is opt-in via [`crate::SimConfig::trace`] and costs nothing
//! when disabled. The buffer is a bounded ring: once `capacity` events are
//! held, the oldest event is evicted and counted in
//! [`EventTrace::dropped_events`] — checkers treat a non-zero drop count as
//! "trace incomplete" rather than silently passing.

use std::collections::VecDeque;
use std::fmt;

use crate::ids::NodeId;
use crate::time::SimTime;

/// Flight-recorder configuration (a field of [`crate::SimConfig`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. Off by default: long runs would otherwise pay memory
    /// for a trace nobody reads.
    pub enabled: bool,
    /// Ring-buffer capacity in events; the oldest events are evicted (and
    /// counted) beyond this. Must be nonzero when `enabled`.
    pub capacity: usize,
    /// Also record the chatty per-reception events (deliveries, collisions,
    /// drops, timer firings). Off, the trace holds transmission starts,
    /// fault events, energy readings and protocol events only — enough for
    /// every invariant, at a fraction of the volume.
    pub verbose: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 1 << 20,
            verbose: false,
        }
    }
}

impl TraceConfig {
    /// An enabled recorder with the default capacity.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }

    /// An enabled recorder that also keeps per-reception events.
    pub fn verbose() -> Self {
        TraceConfig {
            enabled: true,
            verbose: true,
            ..TraceConfig::default()
        }
    }
}

/// Why a reception (or a queued frame) was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Receiver inside an active jamming zone.
    Jammed,
    /// Uniform random link loss.
    RandomLoss,
    /// Gilbert–Elliott bursty-loss chain in a losing state.
    BurstLoss,
    /// The sender died before or during the transmission.
    DeadSender,
    /// The MAC never found the channel idle within its backoff budget.
    MacBusy,
    /// A unicast exhausted its ARQ retries without reaching the addressee.
    UnicastFailed,
}

impl DropReason {
    pub fn label(self) -> &'static str {
        match self {
            DropReason::Jammed => "jam",
            DropReason::RandomLoss => "random",
            DropReason::BurstLoss => "burst",
            DropReason::DeadSender => "dead-sender",
            DropReason::MacBusy => "mac-busy",
            DropReason::UnicastFailed => "unicast-failed",
        }
    }
}

/// Protocol-level trace points, emitted by protocol implementations via the
/// `TraceSink` trait in `diknn-core`. The vocabulary lives here so the sim
/// engine, the protocols and the invariant checker share one event stream
/// without a dependency cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoEvent {
    /// A KNN query was issued (attempt 0) or retried (attempt > 0) at the
    /// sink.
    QueryIssued { qid: u32, attempt: u8, k: u32 },
    /// The home node fixed the KNNB boundary for this attempt (radius after
    /// clamping).
    BoundaryEstimated { qid: u32, attempt: u8, radius: f64 },
    /// A sector token was handed from the event's node to `to`.
    TokenHandoff {
        qid: u32,
        attempt: u8,
        sector: u8,
        epoch: u32,
        to: NodeId,
        /// Itinerary arc-length progress at the moment of the handoff.
        frontier: f64,
    },
    /// A sector token extended its boundary radius (KNNB expand).
    BoundaryExtended {
        qid: u32,
        attempt: u8,
        sector: u8,
        old_radius: f64,
        new_radius: f64,
    },
    /// A Q-node accepted a candidate reply during collection. `dist` is the
    /// candidate's distance to the query point, `radius` the boundary in
    /// force at collection time.
    CandidateHeard {
        qid: u32,
        attempt: u8,
        sector: u8,
        responder: NodeId,
        dist: f64,
        radius: f64,
    },
    /// A sector traversal completed and its partial result left for the
    /// sink.
    SectorFinished {
        qid: u32,
        attempt: u8,
        sector: u8,
        epoch: u32,
    },
    /// The token-loss watchdog re-issued a sector token under a new epoch.
    TokenReissued {
        qid: u32,
        attempt: u8,
        sector: u8,
        epoch: u32,
    },
    /// The sink merged one sector's partial result.
    SinkMerge { qid: u32, attempt: u8, sector: u8 },
    /// The serving layer admitted a query into the engine; `depth` is the
    /// number of queries in flight *after* admission.
    QueryAdmitted { qid: u32, depth: u32 },
    /// The serving layer refused to start a query at its arrival (or
    /// deferred-retry) time because `depth` queries were already in flight.
    /// `terminal` distinguishes a final rejection (the query ends with
    /// status `rejected`, no execution ever happens) from a deferral that
    /// will retry after a backoff.
    QueryRejected {
        qid: u32,
        depth: u32,
        terminal: bool,
    },
    /// The serving layer attached this query to the in-flight query `host`
    /// whose itinerary spatially covers it; the member never executes its
    /// own itinerary and is answered from the host's return leg.
    QueryMerged { qid: u32, host: u32 },
    /// The serving layer answered this query from the cached result of the
    /// earlier query `src`. `age_s` is the cache entry age at serve time and
    /// `ttl_s` the TTL in force — recorded so the trace itself proves the
    /// hit was in-date.
    CacheServed {
        qid: u32,
        src: u32,
        age_s: f64,
        ttl_s: f64,
    },
    /// The query reached a terminal status; `answer` is the final KNN id
    /// list reported to the application.
    QueryDone {
        qid: u32,
        status: &'static str,
        answer: Vec<NodeId>,
    },
}

/// What happened (the payload of a [`TraceEvent`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// The node put a frame on the air. `dest` is `None` for broadcasts;
    /// `beacon` marks engine beacon traffic.
    TxStart { dest: Option<NodeId>, beacon: bool },
    /// A clean copy of a frame from `from` was delivered to the node
    /// (verbose only).
    RxDeliver { from: NodeId },
    /// The node's copy of a frame from `from` was destroyed by an
    /// overlapping transmission (verbose only).
    Collision { from: NodeId },
    /// A frame (from `from`, or queued at the node itself when `from` is
    /// `None`) was dropped (verbose only).
    Drop {
        from: Option<NodeId>,
        reason: DropReason,
    },
    /// A protocol timer fired at the node (verbose only).
    TimerFired { key: u64 },
    /// A protocol timer came due at a dead node and was suppressed
    /// (verbose only).
    TimerSuppressed { key: u64 },
    /// Fail-stop crash.
    Crash,
    /// A crashed node rebooted.
    Recover,
    /// A churn departure: the node left the network voluntarily (see
    /// [`crate::faults::ChurnPlan`]).
    Leave,
    /// A churned-out node rejoined the network (with its neighbour table
    /// wiped when the churn plan models state loss).
    Rejoin,
    /// The node exhausted its energy budget and died permanently.
    EnergyDeath,
    /// Cumulative radio energy spent by the node, in joules, sampled after
    /// a charge. Recorded only under an energy budget.
    Energy { spent_j: f64 },
    /// A protocol-level event (see [`ProtoEvent`]).
    Proto(ProtoEvent),
}

/// One recorded event: when, where, what.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub time: SimTime,
    pub node: NodeId,
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    /// The deterministic line format used for golden files: integer
    /// nanoseconds, then the node, then a keyword with `key=value` fields.
    /// Floats are rendered with three decimals — exact enough to pin
    /// behaviour, coarse enough to survive formatting.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ", self.time.as_nanos(), self.node)?;
        match &self.kind {
            TraceKind::TxStart { dest, beacon } => {
                match dest {
                    Some(to) => write!(f, "tx dest={to}")?,
                    None => write!(f, "tx dest=bcast")?,
                }
                if *beacon {
                    write!(f, " beacon")?;
                }
                Ok(())
            }
            TraceKind::RxDeliver { from } => write!(f, "rx from={from}"),
            TraceKind::Collision { from } => write!(f, "collision from={from}"),
            TraceKind::Drop { from, reason } => {
                write!(f, "drop reason={}", reason.label())?;
                if let Some(from) = from {
                    write!(f, " from={from}")?;
                }
                Ok(())
            }
            TraceKind::TimerFired { key } => write!(f, "timer key={key:#018x}"),
            TraceKind::TimerSuppressed { key } => {
                write!(f, "timer-suppressed key={key:#018x}")
            }
            TraceKind::Crash => write!(f, "crash"),
            TraceKind::Recover => write!(f, "recover"),
            TraceKind::Leave => write!(f, "leave"),
            TraceKind::Rejoin => write!(f, "rejoin"),
            TraceKind::EnergyDeath => write!(f, "energy-death"),
            TraceKind::Energy { spent_j } => write!(f, "energy spent_j={spent_j:.9}"),
            TraceKind::Proto(p) => match p {
                ProtoEvent::QueryIssued { qid, attempt, k } => {
                    write!(f, "proto query-issued qid={qid} attempt={attempt} k={k}")
                }
                ProtoEvent::BoundaryEstimated {
                    qid,
                    attempt,
                    radius,
                } => write!(
                    f,
                    "proto boundary qid={qid} attempt={attempt} radius={radius:.3}"
                ),
                ProtoEvent::TokenHandoff {
                    qid,
                    attempt,
                    sector,
                    epoch,
                    to,
                    frontier,
                } => write!(
                    f,
                    "proto handoff qid={qid} attempt={attempt} sector={sector} \
                     epoch={epoch} to={to} frontier={frontier:.3}"
                ),
                ProtoEvent::BoundaryExtended {
                    qid,
                    attempt,
                    sector,
                    old_radius,
                    new_radius,
                } => write!(
                    f,
                    "proto extend qid={qid} attempt={attempt} sector={sector} \
                     old={old_radius:.3} new={new_radius:.3}"
                ),
                ProtoEvent::CandidateHeard {
                    qid,
                    attempt,
                    sector,
                    responder,
                    dist,
                    radius,
                } => write!(
                    f,
                    "proto heard qid={qid} attempt={attempt} sector={sector} \
                     responder={responder} dist={dist:.3} radius={radius:.3}"
                ),
                ProtoEvent::SectorFinished {
                    qid,
                    attempt,
                    sector,
                    epoch,
                } => write!(
                    f,
                    "proto sector-finished qid={qid} attempt={attempt} \
                     sector={sector} epoch={epoch}"
                ),
                ProtoEvent::TokenReissued {
                    qid,
                    attempt,
                    sector,
                    epoch,
                } => write!(
                    f,
                    "proto reissue qid={qid} attempt={attempt} sector={sector} \
                     epoch={epoch}"
                ),
                ProtoEvent::SinkMerge {
                    qid,
                    attempt,
                    sector,
                } => write!(
                    f,
                    "proto sink-merge qid={qid} attempt={attempt} sector={sector}"
                ),
                ProtoEvent::QueryAdmitted { qid, depth } => {
                    write!(f, "proto admitted qid={qid} depth={depth}")
                }
                ProtoEvent::QueryRejected {
                    qid,
                    depth,
                    terminal,
                } => {
                    write!(f, "proto rejected qid={qid} depth={depth}")?;
                    if *terminal {
                        write!(f, " terminal")?;
                    }
                    Ok(())
                }
                ProtoEvent::QueryMerged { qid, host } => {
                    write!(f, "proto merged qid={qid} host={host}")
                }
                ProtoEvent::CacheServed {
                    qid,
                    src,
                    age_s,
                    ttl_s,
                } => write!(
                    f,
                    "proto cache-served qid={qid} src={src} age={age_s:.3} ttl={ttl_s:.3}"
                ),
                ProtoEvent::QueryDone {
                    qid,
                    status,
                    answer,
                } => {
                    write!(f, "proto query-done qid={qid} status={status} answer=[")?;
                    for (i, id) in answer.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{id}")?;
                    }
                    write!(f, "]")
                }
            },
        }
    }
}

diknn_snap::snap_enum!(DropReason {
    0 => Jammed,
    1 => RandomLoss,
    2 => BurstLoss,
    3 => DeadSender,
    4 => MacBusy,
    5 => UnicastFailed,
});

/// Map a serialized `QueryDone` status string back to the `&'static str`
/// the trace vocabulary uses. The set mirrors `QueryStatus::label()` in
/// `diknn-core`; an unknown status means the snapshot came from a different
/// (incompatible) build and is rejected.
fn intern_status(s: &str) -> Result<&'static str, diknn_snap::SnapError> {
    const KNOWN: [&str; 8] = [
        "pending",
        "completed",
        "partial-timeout",
        "token-lost",
        "sink-unreachable",
        "rejected",
        "merged",
        "cache-hit",
    ];
    KNOWN
        .into_iter()
        .find(|k| *k == s)
        .ok_or(diknn_snap::SnapError::Corrupt("unknown query status label"))
}

impl diknn_snap::Snap for ProtoEvent {
    fn snap(&self, w: &mut diknn_snap::SnapWriter) {
        match self {
            ProtoEvent::QueryIssued { qid, attempt, k } => {
                w.put_u8(0);
                qid.snap(w);
                attempt.snap(w);
                k.snap(w);
            }
            ProtoEvent::BoundaryEstimated {
                qid,
                attempt,
                radius,
            } => {
                w.put_u8(1);
                qid.snap(w);
                attempt.snap(w);
                radius.snap(w);
            }
            ProtoEvent::TokenHandoff {
                qid,
                attempt,
                sector,
                epoch,
                to,
                frontier,
            } => {
                w.put_u8(2);
                qid.snap(w);
                attempt.snap(w);
                sector.snap(w);
                epoch.snap(w);
                to.snap(w);
                frontier.snap(w);
            }
            ProtoEvent::BoundaryExtended {
                qid,
                attempt,
                sector,
                old_radius,
                new_radius,
            } => {
                w.put_u8(3);
                qid.snap(w);
                attempt.snap(w);
                sector.snap(w);
                old_radius.snap(w);
                new_radius.snap(w);
            }
            ProtoEvent::CandidateHeard {
                qid,
                attempt,
                sector,
                responder,
                dist,
                radius,
            } => {
                w.put_u8(4);
                qid.snap(w);
                attempt.snap(w);
                sector.snap(w);
                responder.snap(w);
                dist.snap(w);
                radius.snap(w);
            }
            ProtoEvent::SectorFinished {
                qid,
                attempt,
                sector,
                epoch,
            } => {
                w.put_u8(5);
                qid.snap(w);
                attempt.snap(w);
                sector.snap(w);
                epoch.snap(w);
            }
            ProtoEvent::TokenReissued {
                qid,
                attempt,
                sector,
                epoch,
            } => {
                w.put_u8(6);
                qid.snap(w);
                attempt.snap(w);
                sector.snap(w);
                epoch.snap(w);
            }
            ProtoEvent::SinkMerge {
                qid,
                attempt,
                sector,
            } => {
                w.put_u8(7);
                qid.snap(w);
                attempt.snap(w);
                sector.snap(w);
            }
            ProtoEvent::QueryAdmitted { qid, depth } => {
                w.put_u8(8);
                qid.snap(w);
                depth.snap(w);
            }
            ProtoEvent::QueryRejected {
                qid,
                depth,
                terminal,
            } => {
                w.put_u8(9);
                qid.snap(w);
                depth.snap(w);
                terminal.snap(w);
            }
            ProtoEvent::QueryMerged { qid, host } => {
                w.put_u8(10);
                qid.snap(w);
                host.snap(w);
            }
            ProtoEvent::CacheServed {
                qid,
                src,
                age_s,
                ttl_s,
            } => {
                w.put_u8(11);
                qid.snap(w);
                src.snap(w);
                age_s.snap(w);
                ttl_s.snap(w);
            }
            ProtoEvent::QueryDone {
                qid,
                status,
                answer,
            } => {
                w.put_u8(12);
                qid.snap(w);
                w.put_bytes(status.as_bytes());
                answer.snap(w);
            }
        }
    }

    fn unsnap(r: &mut diknn_snap::SnapReader<'_>) -> Result<Self, diknn_snap::SnapError> {
        Ok(match r.take_u8()? {
            0 => ProtoEvent::QueryIssued {
                qid: u32::unsnap(r)?,
                attempt: u8::unsnap(r)?,
                k: u32::unsnap(r)?,
            },
            1 => ProtoEvent::BoundaryEstimated {
                qid: u32::unsnap(r)?,
                attempt: u8::unsnap(r)?,
                radius: f64::unsnap(r)?,
            },
            2 => ProtoEvent::TokenHandoff {
                qid: u32::unsnap(r)?,
                attempt: u8::unsnap(r)?,
                sector: u8::unsnap(r)?,
                epoch: u32::unsnap(r)?,
                to: NodeId::unsnap(r)?,
                frontier: f64::unsnap(r)?,
            },
            3 => ProtoEvent::BoundaryExtended {
                qid: u32::unsnap(r)?,
                attempt: u8::unsnap(r)?,
                sector: u8::unsnap(r)?,
                old_radius: f64::unsnap(r)?,
                new_radius: f64::unsnap(r)?,
            },
            4 => ProtoEvent::CandidateHeard {
                qid: u32::unsnap(r)?,
                attempt: u8::unsnap(r)?,
                sector: u8::unsnap(r)?,
                responder: NodeId::unsnap(r)?,
                dist: f64::unsnap(r)?,
                radius: f64::unsnap(r)?,
            },
            5 => ProtoEvent::SectorFinished {
                qid: u32::unsnap(r)?,
                attempt: u8::unsnap(r)?,
                sector: u8::unsnap(r)?,
                epoch: u32::unsnap(r)?,
            },
            6 => ProtoEvent::TokenReissued {
                qid: u32::unsnap(r)?,
                attempt: u8::unsnap(r)?,
                sector: u8::unsnap(r)?,
                epoch: u32::unsnap(r)?,
            },
            7 => ProtoEvent::SinkMerge {
                qid: u32::unsnap(r)?,
                attempt: u8::unsnap(r)?,
                sector: u8::unsnap(r)?,
            },
            8 => ProtoEvent::QueryAdmitted {
                qid: u32::unsnap(r)?,
                depth: u32::unsnap(r)?,
            },
            9 => ProtoEvent::QueryRejected {
                qid: u32::unsnap(r)?,
                depth: u32::unsnap(r)?,
                terminal: bool::unsnap(r)?,
            },
            10 => ProtoEvent::QueryMerged {
                qid: u32::unsnap(r)?,
                host: u32::unsnap(r)?,
            },
            11 => ProtoEvent::CacheServed {
                qid: u32::unsnap(r)?,
                src: u32::unsnap(r)?,
                age_s: f64::unsnap(r)?,
                ttl_s: f64::unsnap(r)?,
            },
            12 => {
                let qid = u32::unsnap(r)?;
                let status = {
                    let bytes = r.take_bytes()?;
                    let s = std::str::from_utf8(bytes)
                        .map_err(|_| diknn_snap::SnapError::Corrupt("invalid utf-8 status"))?;
                    intern_status(s)?
                };
                ProtoEvent::QueryDone {
                    qid,
                    status,
                    answer: Vec::unsnap(r)?,
                }
            }
            tag => {
                return Err(diknn_snap::SnapError::BadTag {
                    ty: "ProtoEvent",
                    tag,
                })
            }
        })
    }
}

diknn_snap::snap_enum!(TraceKind {
    0 => TxStart { dest, beacon },
    1 => RxDeliver { from },
    2 => Collision { from },
    3 => Drop { from, reason },
    4 => TimerFired { key },
    5 => TimerSuppressed { key },
    6 => Crash,
    7 => Recover,
    8 => EnergyDeath,
    9 => Energy { spent_j },
    10 => Proto(p),
    11 => Leave,
    12 => Rejoin,
});

diknn_snap::snap_struct!(TraceEvent { time, node, kind });

/// The ring-buffered flight recorder owned by [`crate::Ctx`].
#[derive(Debug, Clone)]
pub struct EventTrace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    verbose: bool,
    /// Events evicted after the ring filled.
    dropped: u64,
}

impl EventTrace {
    /// Build from the run configuration.
    pub fn new(cfg: &TraceConfig) -> Self {
        EventTrace {
            events: VecDeque::new(),
            capacity: cfg.capacity.max(1),
            enabled: cfg.enabled,
            verbose: cfg.verbose,
            dropped: 0,
        }
    }

    /// A disabled recorder (records nothing).
    pub fn disabled() -> Self {
        EventTrace::new(&TraceConfig::default())
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether chatty per-reception events are being kept.
    #[inline]
    pub fn is_verbose(&self) -> bool {
        self.enabled && self.verbose
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring after it filled; a checker seeing a
    /// nonzero count must not certify the run (the evidence is incomplete).
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Iterate over the held events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Record one event (no-op while disabled). Public so tests and
    /// external tools can assemble synthetic traces for the invariant
    /// checker; during a run the engine is the only writer.
    #[inline]
    pub fn record(&mut self, time: SimTime, node: NodeId, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { time, node, kind });
    }

    /// Render the whole trace in the deterministic line format, one event
    /// per line (oldest first), with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Render only the protocol-level and fault events — the compact,
    /// behaviour-defining subset used by golden-trace files.
    pub fn render_protocol(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            if matches!(
                e.kind,
                TraceKind::Proto(_)
                    | TraceKind::Crash
                    | TraceKind::Recover
                    | TraceKind::Leave
                    | TraceKind::Rejoin
                    | TraceKind::EnergyDeath
            ) {
                out.push_str(&e.to_string());
                out.push('\n');
            }
        }
        out
    }
}

diknn_snap::snap_struct!(EventTrace {
    events,
    capacity,
    enabled,
    verbose,
    dropped
});

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(nanos: u64, node: u32, kind: TraceKind) -> (SimTime, NodeId, TraceKind) {
        (SimTime::from_nanos(nanos), NodeId(node), kind)
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut t = EventTrace::disabled();
        let (at, n, k) = ev(5, 1, TraceKind::Crash);
        t.record(at, n, k);
        assert!(t.is_empty());
        assert_eq!(t.dropped_events(), 0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut t = EventTrace::new(&TraceConfig {
            enabled: true,
            capacity: 2,
            verbose: false,
        });
        for i in 0..5u64 {
            let (at, n, k) = ev(i, i as u32, TraceKind::Crash);
            t.record(at, n, k);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped_events(), 3);
        let first = t.events().next().unwrap();
        assert_eq!(first.time.as_nanos(), 3);
    }

    #[test]
    fn line_format_is_stable() {
        let e = TraceEvent {
            time: SimTime::from_nanos(1_500_000_000),
            node: NodeId(7),
            kind: TraceKind::TxStart {
                dest: Some(NodeId(9)),
                beacon: false,
            },
        };
        assert_eq!(e.to_string(), "1500000000 n7 tx dest=n9");
        let e = TraceEvent {
            time: SimTime::ZERO,
            node: NodeId(0),
            kind: TraceKind::Proto(ProtoEvent::QueryDone {
                qid: 3,
                status: "completed",
                answer: vec![NodeId(1), NodeId(2)],
            }),
        };
        assert_eq!(
            e.to_string(),
            "0 n0 proto query-done qid=3 status=completed answer=[n1,n2]"
        );
        let e = TraceEvent {
            time: SimTime::from_nanos(12),
            node: NodeId(4),
            kind: TraceKind::Drop {
                from: Some(NodeId(2)),
                reason: DropReason::BurstLoss,
            },
        };
        assert_eq!(e.to_string(), "12 n4 drop reason=burst from=n2");
    }

    #[test]
    fn serving_line_format_is_stable() {
        let at = SimTime::from_nanos(2_000_000_000);
        let n = NodeId(3);
        let line = |p: ProtoEvent| {
            TraceEvent {
                time: at,
                node: n,
                kind: TraceKind::Proto(p),
            }
            .to_string()
        };
        assert_eq!(
            line(ProtoEvent::QueryAdmitted { qid: 4, depth: 7 }),
            "2000000000 n3 proto admitted qid=4 depth=7"
        );
        assert_eq!(
            line(ProtoEvent::QueryRejected {
                qid: 5,
                depth: 8,
                terminal: false,
            }),
            "2000000000 n3 proto rejected qid=5 depth=8"
        );
        assert_eq!(
            line(ProtoEvent::QueryRejected {
                qid: 5,
                depth: 8,
                terminal: true,
            }),
            "2000000000 n3 proto rejected qid=5 depth=8 terminal"
        );
        assert_eq!(
            line(ProtoEvent::QueryMerged { qid: 6, host: 2 }),
            "2000000000 n3 proto merged qid=6 host=2"
        );
        assert_eq!(
            line(ProtoEvent::CacheServed {
                qid: 7,
                src: 1,
                age_s: 0.25,
                ttl_s: 2.0,
            }),
            "2000000000 n3 proto cache-served qid=7 src=1 age=0.250 ttl=2.000"
        );
    }

    #[test]
    fn render_protocol_filters_engine_noise() {
        let mut t = EventTrace::new(&TraceConfig::verbose());
        let (at, n, k) = ev(
            1,
            0,
            TraceKind::TxStart {
                dest: None,
                beacon: true,
            },
        );
        t.record(at, n, k);
        let (at, n, k) = ev(2, 1, TraceKind::Crash);
        t.record(at, n, k);
        let (at, n, k) = ev(
            3,
            2,
            TraceKind::Proto(ProtoEvent::QueryIssued {
                qid: 0,
                attempt: 0,
                k: 5,
            }),
        );
        t.record(at, n, k);
        let full = t.render();
        let proto = t.render_protocol();
        assert_eq!(full.lines().count(), 3);
        assert_eq!(proto.lines().count(), 2);
        assert!(proto.contains("crash"));
        assert!(proto.contains("query-issued"));
        assert!(!proto.contains("tx "));
    }
}
