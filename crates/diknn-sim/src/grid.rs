//! Uniform spatial grid over the simulation field: the radio hot path.
//!
//! Every transmission, neighbour-oracle lookup, and table warm-up needs
//! "which nodes are within radio range of here?". The naive answer scans
//! all `n` mobility plans — O(n) per transmission, O(n²) per beacon round,
//! the exact cost wall that makes naive PHY neighbourhood computation the
//! bottleneck of packet-level simulators. This module buckets nodes into
//! square cells of edge length = radio range, so a range query touches the
//! 3×3 cell neighbourhood (O(degree)) instead of the whole field.
//!
//! # Determinism contract
//!
//! The grid is a *candidate* index, never an oracle:
//!
//! * Bucket contents are kept sorted ascending by node id, and cells are
//!   visited in row-major order, so candidate enumeration order is a pure
//!   function of the grid state — no hashing, no pointer order.
//! * Queries pad the search radius by `vmax · (now − built_at)`: a node
//!   can have drifted at most that far from the position it was bucketed
//!   at, so the padded query is a guaranteed superset of the true answer.
//! * Callers re-check every candidate against its **true** current
//!   position with the same predicate (`dist_sq <= range²`) the brute
//!   scan uses, and sort the survivors ascending by id. The result is
//!   therefore bit-identical — same membership, same order, hence the
//!   same downstream RNG draw sequence — to the O(n) scan it replaces.
//!   `crates/diknn-sim/tests/grid_equiv.rs` proptests this equivalence.
//!
//! Positions outside the field boundary are clamped into the edge cells.
//! Clamping is monotone per axis, so a clamped position still lands inside
//! the clamped query window — coverage survives out-of-field drift.
//!
//! # Refresh policy
//!
//! Buckets are refreshed *incrementally* (a node moves buckets only when
//! its cell changed) once the accumulated drift bound `vmax · (now −
//! built_at)` exceeds a slack threshold (half the radio range by
//! default). Static scenarios (`vmax = 0`) never refresh and never pad.

use crate::time::SimTime;
use diknn_geom::{Point, Rect};

/// A uniform cell grid over node positions; see the module docs for the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    /// Cell edge length in metres (the radio range).
    cell: f64,
    /// Field origin; cell (0,0) starts here.
    min_x: f64,
    min_y: f64,
    cols: usize,
    rows: usize,
    /// Per-cell node ids, each bucket sorted ascending. Indexed
    /// `row * cols + col` (row-major).
    buckets: Vec<Vec<u32>>,
    /// Flat cell index each node currently sits in.
    node_cell: Vec<u32>,
    /// Position each node was bucketed at (as of `built_at`). By the
    /// drift bound, node `i`'s true position at `now` is within
    /// `drift_bound(now)` metres of `anchors[i]` — a dense array callers
    /// can use to triage candidates without touching the mobility plans
    /// (see [`SpatialGrid::anchors`]).
    anchors: Vec<Point>,
    /// Upper bound on any node's speed (m/s); drives query padding.
    vmax: f64,
    /// Time the bucket assignments were last computed.
    built_at: SimTime,
    /// Refresh once drift (`vmax · age`) exceeds this many metres.
    refresh_slack: f64,
    /// Bumped on every [`SpatialGrid::refresh`]. Bucket contents are a pure
    /// function of `(build inputs, epoch)`, so callers caching a query
    /// answer can reuse it for as long as the epoch and the query window
    /// are unchanged (the engine's incremental audible sets do exactly
    /// this).
    epoch: u64,
}

impl SpatialGrid {
    /// Build the grid over `field` with the given cell size, bucketing
    /// every node at its position in `positions` (one entry per node,
    /// indexed by id) as of time `t`.
    pub fn build(
        field: Rect,
        cell: f64,
        positions: &[Point],
        vmax: f64,
        refresh_slack: f64,
        t: SimTime,
    ) -> Self {
        debug_assert!(cell > 0.0, "grid cell size must be positive");
        let cols = ((field.width() / cell).ceil() as usize).max(1);
        let rows = ((field.height() / cell).ceil() as usize).max(1);
        let mut grid = SpatialGrid {
            cell,
            min_x: field.min_x,
            min_y: field.min_y,
            cols,
            rows,
            buckets: vec![Vec::new(); cols * rows],
            node_cell: vec![0; positions.len()],
            anchors: positions.to_vec(),
            vmax: vmax.max(0.0),
            built_at: t,
            refresh_slack: refresh_slack.max(0.0),
            epoch: 0,
        };
        for (i, &p) in positions.iter().enumerate() {
            let c = grid.cell_index(p);
            grid.node_cell[i] = c;
            // Ids are inserted in ascending order, so buckets stay sorted.
            grid.buckets[c as usize].push(i as u32);
        }
        grid
    }

    /// Number of nodes indexed.
    #[inline]
    pub fn len(&self) -> usize {
        self.node_cell.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_cell.is_empty()
    }

    /// Grid dimensions `(cols, rows)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Column of `x`, clamped into the grid.
    #[inline]
    fn col_of(&self, x: f64) -> usize {
        let c = ((x - self.min_x) / self.cell).floor();
        if c <= 0.0 {
            0
        } else {
            (c as usize).min(self.cols - 1)
        }
    }

    /// Row of `y`, clamped into the grid.
    #[inline]
    fn row_of(&self, y: f64) -> usize {
        let r = ((y - self.min_y) / self.cell).floor();
        if r <= 0.0 {
            0
        } else {
            (r as usize).min(self.rows - 1)
        }
    }

    /// Flat cell index of a position (clamped into the field).
    #[inline]
    fn cell_index(&self, p: Point) -> u32 {
        (self.row_of(p.y) * self.cols + self.col_of(p.x)) as u32
    }

    /// How far any node may have drifted from its bucketed position by
    /// `now`, in metres.
    #[inline]
    pub fn drift_bound(&self, now: SimTime) -> f64 {
        if self.vmax == 0.0 || now <= self.built_at {
            return 0.0;
        }
        self.vmax * now.since(self.built_at).as_secs_f64()
    }

    /// Whether the accumulated drift bound warrants an incremental
    /// refresh. Static scenarios never refresh.
    #[inline]
    pub fn needs_refresh(&self, now: SimTime) -> bool {
        self.drift_bound(now) > self.refresh_slack
    }

    /// Re-bucket every node at its current position (`pos_of(i)` must
    /// return node `i`'s position as of `now`). Incremental: a node only
    /// touches its buckets when its cell actually changed, which under
    /// bounded drift is a small fraction of the population.
    pub fn refresh<F: Fn(usize) -> Point>(&mut self, pos_of: F, now: SimTime) {
        for i in 0..self.node_cell.len() {
            let p = pos_of(i);
            self.anchors[i] = p;
            let new_cell = self.cell_index(p);
            let old_cell = self.node_cell[i];
            if new_cell == old_cell {
                continue;
            }
            let id = i as u32;
            let old = &mut self.buckets[old_cell as usize];
            if let Ok(at) = old.binary_search(&id) {
                old.remove(at);
            }
            let new = &mut self.buckets[new_cell as usize];
            if let Err(at) = new.binary_search(&id) {
                new.insert(at, id);
            }
            self.node_cell[i] = new_cell;
        }
        self.built_at = now;
        self.epoch += 1;
    }

    /// Refresh generation: bumped each time [`SpatialGrid::refresh`] runs.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The position every node was last bucketed at (indexed by node id;
    /// valid as of `built_at`). Combined with [`SpatialGrid::drift_bound`]
    /// this bounds each node's true position: `|pos(now) - anchors[i]| <=
    /// drift_bound(now)`, letting range queries resolve most candidates
    /// definitively from this dense array and reserve the exact (and far
    /// more expensive) mobility-plan evaluation for candidates inside the
    /// ambiguity band around the range boundary.
    #[inline]
    pub fn anchors(&self) -> &[Point] {
        &self.anchors
    }

    // lint: hot-path (radio-range queries run once per transmission; the
    // out-parameter API exists so callers can reuse one buffer)
    /// Append to `out` every node whose bucketed position could put it
    /// within `radius` of `center` as of `now` — a superset of the true
    /// in-range set (see module docs). Candidates arrive in row-major
    /// cell order, ascending by id within a cell; callers exact-check and
    /// sort. `out` is not cleared.
    pub fn candidates_near(&self, center: Point, radius: f64, now: SimTime, out: &mut Vec<u32>) {
        let w = self.cover_cells(center, radius, now);
        self.collect_cells(w, out);
    }

    /// The inclusive cell window `(col0, col1, row0, row1)` that a
    /// [`SpatialGrid::candidates_near`] query with the same arguments
    /// visits (drift padding included). Together with [`SpatialGrid::epoch`]
    /// this keys cached query answers: equal window + equal epoch ⇒ the
    /// candidate list is unchanged.
    pub fn cover_cells(&self, center: Point, radius: f64, now: SimTime) -> (u32, u32, u32, u32) {
        let r = radius + self.drift_bound(now);
        (
            self.col_of(center.x - r) as u32,
            self.col_of(center.x + r) as u32,
            self.row_of(center.y - r) as u32,
            self.row_of(center.y + r) as u32,
        )
    }

    /// Append the contents of every cell in `window` (as produced by
    /// [`SpatialGrid::cover_cells`]) to `out`, row-major, ascending by id
    /// within a cell. `out` is not cleared.
    pub fn collect_cells(&self, window: (u32, u32, u32, u32), out: &mut Vec<u32>) {
        let (c0, c1, r0, r1) = window;
        for row in r0..=r1 {
            for col in c0..=c1 {
                out.extend_from_slice(&self.buckets[row as usize * self.cols + col as usize]);
            }
        }
    }

    /// Append to `out` every node whose bucketed position could place it
    /// inside `rect` as of `now` (superset; same contract as
    /// [`SpatialGrid::candidates_near`]).
    pub fn candidates_in_rect(&self, rect: &Rect, now: SimTime, out: &mut Vec<u32>) {
        if rect.is_empty() {
            return;
        }
        let pad = self.drift_bound(now);
        self.candidates_in_window(
            rect.min_x - pad,
            rect.min_y - pad,
            rect.max_x + pad,
            rect.max_y + pad,
            out,
        );
    }

    fn candidates_in_window(&self, x0: f64, y0: f64, x1: f64, y1: f64, out: &mut Vec<u32>) {
        let (c0, c1) = (self.col_of(x0), self.col_of(x1));
        let (r0, r1) = (self.row_of(y0), self.row_of(y1));
        for row in r0..=r1 {
            for col in c0..=c1 {
                out.extend_from_slice(&self.buckets[row * self.cols + col]);
            }
        }
    }
    // lint: end-hot-path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn grid_of(points: &[(f64, f64)], cell: f64, vmax: f64) -> SpatialGrid {
        let positions: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        SpatialGrid::build(
            Rect::new(0.0, 0.0, 100.0, 100.0),
            cell,
            &positions,
            vmax,
            cell * 0.5,
            SimTime::ZERO,
        )
    }

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn build_buckets_and_dims() {
        let g = grid_of(&[(5.0, 5.0), (25.0, 5.0), (5.0, 25.0)], 20.0, 0.0);
        assert_eq!(g.dims(), (5, 5));
        assert_eq!(g.len(), 3);
        let mut out = Vec::new();
        g.candidates_near(Point::new(5.0, 5.0), 1.0, SimTime::ZERO, &mut out);
        assert_eq!(sorted(out), vec![0]);
    }

    #[test]
    fn boundary_positions_clamp_into_edge_cells() {
        // Exactly on the max corner, and well outside the field: both must
        // land in a valid cell and stay findable.
        let g = grid_of(&[(100.0, 100.0), (150.0, -10.0)], 20.0, 0.0);
        let mut out = Vec::new();
        g.candidates_near(Point::new(100.0, 100.0), 1.0, SimTime::ZERO, &mut out);
        assert!(out.contains(&0));
        out.clear();
        // Query centred outside the field still reaches the clamped cell.
        g.candidates_near(Point::new(150.0, -10.0), 1.0, SimTime::ZERO, &mut out);
        assert!(out.contains(&1));
    }

    #[test]
    fn cell_boundary_point_is_in_the_upper_cell() {
        // x = 20.0 with cell 20 is col 1, not col 0 — and a query window
        // touching x=20 from below must still cover it.
        let g = grid_of(&[(20.0, 0.0)], 20.0, 0.0);
        let mut out = Vec::new();
        g.candidates_near(Point::new(19.0, 0.0), 1.0, SimTime::ZERO, &mut out);
        assert!(out.contains(&0));
    }

    #[test]
    fn drift_padding_keeps_movers_covered() {
        // Node bucketed at (5,5) but allowed to move 2 m/s; after 10 s the
        // query must pad by 20 m and still surface it for a far query.
        let g = grid_of(&[(5.0, 5.0)], 20.0, 2.0);
        let later = SimTime::ZERO + SimDuration::from_secs_f64(10.0);
        assert_eq!(g.drift_bound(later), 20.0);
        assert!(g.needs_refresh(later));
        let mut out = Vec::new();
        // True position could now be up to (25,5); query there with zero
        // radius must still return the candidate thanks to the pad.
        g.candidates_near(Point::new(25.0, 5.0), 0.0, later, &mut out);
        assert!(out.contains(&0));
    }

    #[test]
    fn static_grid_never_refreshes() {
        let g = grid_of(&[(5.0, 5.0)], 20.0, 0.0);
        let much_later = SimTime::ZERO + SimDuration::from_secs_f64(1e6);
        assert_eq!(g.drift_bound(much_later), 0.0);
        assert!(!g.needs_refresh(much_later));
    }

    #[test]
    fn refresh_moves_nodes_between_buckets() {
        let mut g = grid_of(&[(5.0, 5.0), (6.0, 5.0)], 20.0, 2.0);
        let later = SimTime::ZERO + SimDuration::from_secs_f64(30.0);
        // Node 0 moved to (65,5); node 1 stayed.
        let moved = [Point::new(65.0, 5.0), Point::new(6.0, 5.0)];
        g.refresh(|i| moved[i], later);
        assert_eq!(g.drift_bound(later), 0.0);
        let mut out = Vec::new();
        g.candidates_near(Point::new(65.0, 5.0), 1.0, later, &mut out);
        assert_eq!(sorted(out), vec![0]);
        out = Vec::new();
        g.candidates_near(Point::new(5.0, 5.0), 1.0, later, &mut out);
        assert_eq!(sorted(out), vec![1]);
    }

    #[test]
    fn epoch_counts_refreshes_and_cover_cells_matches_candidates_near() {
        let mut g = grid_of(&[(5.0, 5.0), (45.0, 45.0)], 20.0, 2.0);
        assert_eq!(g.epoch(), 0);
        let later = SimTime::ZERO + SimDuration::from_secs_f64(30.0);
        let moved = [Point::new(5.0, 5.0), Point::new(45.0, 45.0)];
        g.refresh(|i| moved[i], later);
        assert_eq!(g.epoch(), 1);
        let center = Point::new(20.0, 20.0);
        let mut direct = Vec::new();
        g.candidates_near(center, 25.0, later, &mut direct);
        let mut via_window = Vec::new();
        g.collect_cells(g.cover_cells(center, 25.0, later), &mut via_window);
        assert_eq!(direct, via_window);
    }

    #[test]
    fn rect_query_covers_contained_nodes() {
        let g = grid_of(&[(10.0, 10.0), (50.0, 50.0), (90.0, 90.0)], 20.0, 0.0);
        let mut out = Vec::new();
        g.candidates_in_rect(&Rect::new(40.0, 40.0, 60.0, 60.0), SimTime::ZERO, &mut out);
        assert!(out.contains(&1));
        assert!(!out.contains(&2));
        out.clear();
        g.candidates_in_rect(&Rect::empty(), SimTime::ZERO, &mut out);
        assert!(out.is_empty());
    }
}
