//! Identifier newtypes used across the simulator.

use std::fmt;

/// Index of a sensor node in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Handle returned by [`crate::Ctx::set_timer`]; can be used to cancel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

impl diknn_snap::Snap for NodeId {
    fn snap(&self, w: &mut diknn_snap::SnapWriter) {
        w.put_u32(self.0);
    }
    fn unsnap(r: &mut diknn_snap::SnapReader<'_>) -> Result<Self, diknn_snap::SnapError> {
        Ok(NodeId(r.take_u32()?))
    }
}

impl diknn_snap::Snap for TimerId {
    fn snap(&self, w: &mut diknn_snap::SnapWriter) {
        w.put_u64(self.0);
    }
    fn unsnap(r: &mut diknn_snap::SnapReader<'_>) -> Result<Self, diknn_snap::SnapError> {
        Ok(TimerId(r.take_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        let n = NodeId(7);
        assert_eq!(n.index(), 7);
        assert_eq!(n.to_string(), "n7");
    }
}
