//! Slab-backed event scheduling: an inline d-ary event heap and a
//! generation-checked frame pool.
//!
//! PR 9's hot-path overhaul replaces the engine's
//! `BinaryHeap<Reverse<QueuedEvent>>` and the `BTreeMap<u64, PendingTx>`
//! frame table with the two structures here (the classic ns-2 scheduler +
//! packet free-list shape):
//!
//! * [`EventQueue`] — a 4-ary min-heap over `(SimTime, u64)` keys with the
//!   event payload stored **inline** in the heap array. No per-event boxing,
//!   no node allocation: pushing into spare capacity is a couple of moves
//!   along one branch of a shallow tree.
//! * [`FramePool`] — a slab with a LIFO free list. Frames are addressed by
//!   a [`Handle`] carrying the slot index *and* a generation counter, so a
//!   stale handle (its frame was freed, the slot reused) is detected
//!   instead of silently reading the new occupant.
//!
//! # Determinism contract
//!
//! * The heap pops strictly in `(time, seq)` order. Since the engine's
//!   sequence numbers make every key unique, the pop *sequence* is a pure
//!   function of the pushed set — independent of internal arity or layout —
//!   and therefore bit-identical to the `BinaryHeap` it replaced
//!   (`crates/diknn-sim/tests/queue_pool.rs` proptests this equivalence).
//! * The pool's free list is LIFO and fully serialized by its [`Snap`]
//!   impl, so a restored pool hands out exactly the slot/generation
//!   sequence the original would have — snapshot/restore cannot perturb
//!   frame identity.

use diknn_snap::{Snap, SnapError, SnapReader, SnapWriter};

use crate::time::SimTime;

/// Heap arity. Four keeps the tree shallow (fewer cache-missing levels
/// than binary) while sift-down still scans few children.
const ARITY: usize = 4;

/// One scheduled entry: key `(time, seq)` plus the inline payload.
#[derive(Debug, Clone, Copy)]
struct Entry<K> {
    time: SimTime,
    seq: u64,
    kind: K,
}

/// A 4-ary min-heap of `(SimTime, u64, K)` with inline storage.
///
/// `K` is the event payload (the engine uses its `EventKind`, a small
/// `Copy` enum). Keys must be unique for deterministic pop order; the
/// engine guarantees this with its monotone sequence counter.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<K> {
    heap: Vec<Entry<K>>,
}

impl<K: Copy> EventQueue<K> {
    pub fn new() -> Self {
        EventQueue { heap: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    // lint: hot-path (push/pop run once per simulated event; no
    // allocation beyond amortized Vec growth)
    /// Schedule `kind` at `(time, seq)`.
    #[inline]
    pub fn push(&mut self, time: SimTime, seq: u64, kind: K) {
        self.heap.push(Entry { time, seq, kind });
        self.sift_up(self.heap.len() - 1);
    }

    /// Key of the earliest entry without removing it.
    #[inline]
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.first().map(|e| (e.time, e.seq))
    }

    /// Remove and return the earliest entry.
    pub fn pop(&mut self) -> Option<(SimTime, u64, K)> {
        let n = self.heap.len();
        if n == 0 {
            return None;
        }
        self.heap.swap(0, n - 1);
        let out = self.heap.pop().map(|e| (e.time, e.seq, e.kind));
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        out
    }

    #[inline]
    fn key(&self, i: usize) -> (SimTime, u64) {
        let e = &self.heap[i];
        (e.time, e.seq)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.key(i) >= self.key(parent) {
                break;
            }
            self.heap.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= n {
                break;
            }
            let mut best = first_child;
            let last_child = (first_child + ARITY).min(n);
            for c in (first_child + 1)..last_child {
                if self.key(c) < self.key(best) {
                    best = c;
                }
            }
            if self.key(best) >= self.key(i) {
                break;
            }
            self.heap.swap(i, best);
            i = best;
        }
    }
    // lint: end-hot-path

    /// Visit every queued entry in unspecified (heap) order. Snapshot code
    /// sorts by `(time, seq)` before serializing so the byte stream stays
    /// canonical.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, u64, &K)> {
        self.heap.iter().map(|e| (e.time, e.seq, &e.kind))
    }
}

/// Generation-checked reference to a [`FramePool`] slot.
///
/// Two handles are equal only if they name the same slot *and* the same
/// occupancy generation, so a handle outlives its frame safely: after the
/// frame is freed (and even after the slot is reused) the old handle
/// resolves to `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Handle {
    slot: u32,
    gen: u32,
}

impl Handle {
    /// Slot index (stable for the lifetime of the referenced frame).
    #[inline]
    pub fn slot(self) -> u32 {
        self.slot
    }
}

impl Snap for Handle {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(self.slot);
        w.put_u32(self.gen);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Handle {
            slot: r.take_u32()?,
            gen: r.take_u32()?,
        })
    }
}

#[derive(Debug, Clone)]
struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// A slab of `T` with a LIFO free list and generation-checked handles.
///
/// Frames (MAC-queued transmissions) are inserted when enqueued and
/// removed when the transmission completes or is dropped; the freed slot
/// is reused by the next insert, so steady-state operation performs no
/// allocation at all.
#[derive(Debug, Clone, Default)]
pub struct FramePool<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> FramePool<T> {
    pub fn new() -> Self {
        FramePool {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live frames.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + free).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    // lint: hot-path (frame insert/lookup/remove run per MAC attempt and
    // per delivery; slot reuse keeps this allocation-free at steady state)
    /// Store `val`, reusing the most recently freed slot if any.
    pub fn insert(&mut self, val: T) -> Handle {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.val.is_none(), "free list pointed at a live slot");
            s.val = Some(val);
            return Handle { slot, gen: s.gen };
        }
        let slot = self.slots.len() as u32;
        self.slots.push(Slot {
            gen: 0,
            val: Some(val),
        });
        Handle { slot, gen: 0 }
    }

    /// The frame behind `h`, or `None` if it was removed (or the slot has
    /// since been reused by a newer frame).
    #[inline]
    pub fn get(&self, h: Handle) -> Option<&T> {
        match self.slots.get(h.slot as usize) {
            Some(s) if s.gen == h.gen => s.val.as_ref(),
            _ => None,
        }
    }

    #[inline]
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        match self.slots.get_mut(h.slot as usize) {
            Some(s) if s.gen == h.gen => s.val.as_mut(),
            _ => None,
        }
    }

    /// Remove and return the frame behind `h`; the slot's generation is
    /// bumped so `h` (and any copy of it) goes permanently stale.
    pub fn remove(&mut self, h: Handle) -> Option<T> {
        let s = self.slots.get_mut(h.slot as usize)?;
        if s.gen != h.gen {
            return None;
        }
        let val = s.val.take()?;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(h.slot);
        self.live -= 1;
        Some(val)
    }
    // lint: end-hot-path

    /// Visit every live frame in ascending slot order (deterministic;
    /// used by tests and diagnostics, not the hot path).
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.val.as_ref().map(|v| {
                (
                    Handle {
                        slot: i as u32,
                        gen: s.gen,
                    },
                    v,
                )
            })
        })
    }
}

// The pool is part of the engine snapshot: slots (generation + occupant)
// and the free list are serialized verbatim so a restored pool reproduces
// the exact slot/generation allocation sequence of the original. Changing
// this layout requires a `SNAP_VERSION` bump.
impl<T: Snap> Snap for FramePool<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.slots.len() as u64);
        for s in &self.slots {
            w.put_u32(s.gen);
            s.val.snap(w);
        }
        self.free.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.take_len()?;
        let mut slots: Vec<Slot<T>> = Vec::with_capacity(n);
        let mut live = 0usize;
        for _ in 0..n {
            let gen = r.take_u32()?;
            let val = Option::<T>::unsnap(r)?;
            if val.is_some() {
                live += 1;
            }
            slots.push(Slot { gen, val });
        }
        let free = Vec::<u32>::unsnap(r)?;
        if free.len() != n - live && !(n == 0 && free.is_empty()) {
            return Err(SnapError::Corrupt("frame pool free list length mismatch"));
        }
        for &f in &free {
            match slots.get(f as usize) {
                Some(s) if s.val.is_none() => {}
                _ => return Err(SnapError::Corrupt("frame pool free list names a live slot")),
            }
        }
        Ok(FramePool { slots, free, live })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_pops_in_key_order() {
        let mut q = EventQueue::new();
        let keys = [(5u64, 0u64), (1, 1), (5, 2), (0, 3), (3, 4), (1, 5)];
        for &(t, s) in &keys {
            q.push(SimTime::from_nanos(t), s, s as u32);
        }
        assert_eq!(q.len(), keys.len());
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        for &(t, s) in &sorted {
            assert_eq!(q.peek_key(), Some((SimTime::from_nanos(t), s)));
            let (pt, ps, kind) = q.pop().expect("entry");
            assert_eq!((pt.as_nanos(), ps), (t, s));
            assert_eq!(kind, s as u32);
        }
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn pool_reuses_slots_lifo_and_staleness_is_detected() {
        let mut p: FramePool<&'static str> = FramePool::new();
        let a = p.insert("a");
        let b = p.insert("b");
        assert_eq!(p.len(), 2);
        assert_eq!(p.remove(a), Some("a"));
        // Stale handle: same slot, old generation.
        assert_eq!(p.get(a), None);
        assert_eq!(p.remove(a), None);
        // LIFO reuse: the freed slot comes back first, with a new gen.
        let c = p.insert("c");
        assert_eq!(c.slot(), a.slot());
        assert_ne!(c, a);
        assert_eq!(p.get(c), Some(&"c"));
        assert_eq!(p.get(a), None, "old handle must not see the new frame");
        assert_eq!(p.get(b), Some(&"b"));
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn pool_snapshot_roundtrip_is_byte_stable() {
        let mut p: FramePool<u32> = FramePool::new();
        let a = p.insert(10);
        let _b = p.insert(20);
        let c = p.insert(30);
        p.remove(a);
        p.remove(c);
        let mut w = SnapWriter::new();
        p.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let q = FramePool::<u32>::unsnap(&mut r).expect("unsnap");
        r.finish().expect("consumed");
        assert_eq!(q.len(), p.len());
        let mut w2 = SnapWriter::new();
        q.snap(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "snapshot bytes must be stable");
        // The restored pool must hand out the same slots the original would.
        let mut p2 = p.clone();
        let mut q2 = q;
        for v in [7u32, 8, 9] {
            assert_eq!(p2.insert(v), q2.insert(v));
        }
    }

    #[test]
    fn corrupt_free_list_is_rejected() {
        let mut p: FramePool<u32> = FramePool::new();
        let a = p.insert(1);
        p.insert(2);
        p.remove(a);
        let mut w = SnapWriter::new();
        p.snap(&mut w);
        let mut bytes = w.into_bytes();
        // The free list is the trailing Vec<u32>: [len=1, slot=0]. Point it
        // at the live slot 1 instead.
        let last = bytes.len() - 4;
        bytes[last..].copy_from_slice(&1u32.to_le_bytes());
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            FramePool::<u32>::unsnap(&mut r),
            Err(SnapError::Corrupt(_))
        ));
    }
}
