//! The sanctioned parallel executor for seed sweeps.
//!
//! This is the **only** module in the workspace allowed to touch
//! `std::thread` (enforced by the `raw-thread` rule of `cargo xtask
//! lint`): all parallelism funnels through [`ParallelSweep`], which is
//! built so that parallel execution cannot change results.
//!
//! # Determinism argument
//!
//! A simulation run is a pure function of its seed — `Simulator` holds no
//! ambient state ([`diknn_sim::Simulator`] is `Send`, every RNG is
//! seeded, the clock is simulated. The sweep therefore parallelises at
//! the *run* boundary and nowhere inside a run:
//!
//! 1. **Same inputs.** Worker `i` computes job `i` with exactly the
//!    arguments the sequential loop would pass (seeds derived by the
//!    caller from the job index, never from thread identity).
//! 2. **Same collection order.** Each worker writes its result into slot
//!    `i` of a pre-allocated buffer; the caller reads slots `0..n` in
//!    index order. Aggregation (including float summation, which is not
//!    associative) therefore sees results in the identical order the
//!    sequential path produces.
//! 3. **No shared mutable state.** Workers share only the job counter;
//!    everything else is per-run. Thread scheduling can change *when*
//!    a job runs, never *what* it computes or where it lands.
//!
//! Hence `run_parallel(n, seed, …) == run(n, seed)` bit for bit, which
//! `tests/parallel_equiv.rs` pins.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A scoped-thread work-stealing executor for embarrassingly parallel
/// sweeps (seed × config cells). No dependencies beyond `std`.
#[derive(Debug, Clone, Copy)]
pub struct ParallelSweep {
    threads: usize,
}

impl ParallelSweep {
    /// An executor with exactly `threads` workers (clamped to ≥ 1).
    /// One thread degenerates to the plain sequential loop.
    pub fn new(threads: usize) -> Self {
        ParallelSweep {
            threads: threads.max(1),
        }
    }

    /// An executor sized to the machine's available parallelism.
    pub fn available() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ParallelSweep::new(threads)
    }

    /// Worker count.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Compute `f(0), f(1), …, f(n-1)` across the worker pool and return
    /// the results **in index order** — bit-identical to
    /// `(0..n).map(f).collect()` whatever the thread interleaving.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = f(i);
                    if let Ok(mut slot) = slots[i].lock() {
                        *slot = Some(out);
                    }
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot.into_inner() {
                Ok(Some(v)) => v,
                // Unreachable unless a worker panicked, and a worker panic
                // already propagates out of thread::scope above.
                _ => panic!("parallel sweep produced no result for job {i}"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        let sweep = ParallelSweep::new(4);
        // Jobs finish out of order (later indices are cheaper), results
        // must not.
        let got = sweep.map(32, |i| {
            std::thread::sleep(std::time::Duration::from_micros(((32 - i) as u64) * 50));
            i * i
        });
        assert_eq!(got, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_is_the_sequential_loop() {
        let sweep = ParallelSweep::new(1);
        assert_eq!(sweep.threads(), 1);
        assert_eq!(sweep.map(5, |i| i + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ParallelSweep::new(0).threads(), 1);
        assert!(ParallelSweep::available().threads() >= 1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let sweep = ParallelSweep::new(8);
        assert_eq!(sweep.map(0, |i| i), Vec::<usize>::new());
        assert_eq!(sweep.map(1, |i| i), vec![0]);
    }

    #[test]
    fn more_threads_than_jobs() {
        let sweep = ParallelSweep::new(16);
        assert_eq!(sweep.map(3, |i| i * 2), vec![0, 2, 4]);
    }
}
