//! The sanctioned parallel executor for seed sweeps.
//!
//! This is the **only** module in the workspace allowed to touch
//! `std::thread` (enforced by the `raw-thread` rule of `cargo xtask
//! lint`): all parallelism funnels through [`ParallelSweep`], which is
//! built so that parallel execution cannot change results.
//!
//! # Determinism argument
//!
//! A simulation run is a pure function of its seed — `Simulator` holds no
//! ambient state ([`diknn_sim::Simulator`] is `Send`, every RNG is
//! seeded, the clock is simulated. The sweep therefore parallelises at
//! the *run* boundary and nowhere inside a run:
//!
//! 1. **Same inputs.** Worker `i` computes job `i` with exactly the
//!    arguments the sequential loop would pass (seeds derived by the
//!    caller from the job index, never from thread identity).
//! 2. **Same collection order.** Each worker writes its result into slot
//!    `i` of a pre-allocated buffer; the caller reads slots `0..n` in
//!    index order. Aggregation (including float summation, which is not
//!    associative) therefore sees results in the identical order the
//!    sequential path produces.
//! 3. **No shared mutable state.** Workers share only the job counter;
//!    everything else is per-run. Thread scheduling can change *when*
//!    a job runs, never *what* it computes or where it lands.
//!
//! Hence `run_parallel(n, seed, …) == run(n, seed)` bit for bit, which
//! `tests/parallel_equiv.rs` pins.
//!
//! # Intra-run sharding
//!
//! [`ShardPool`] parallelises *inside* one run: it implements
//! [`diknn_sim::ShardExecutor`] with persistent worker threads, one per
//! spatial shard ([`diknn_sim::ShardMap`] x-bands). Workers compute only
//! the pure audible-set function over immutable world snapshots; every
//! mutation stays on the calling (commit) thread, and results are merged
//! back in `(time, handle)` order before the engine sees them. See
//! `diknn_sim::shard` and DESIGN.md §15 for the bit-identity argument;
//! `tests/shard_equiv.rs` pins it across shard counts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

use diknn_sim::{
    AudibleWorld, InlineExecutor, Protocol, ShardExecutor, ShardMap, ShardResult, SimTime,
    Simulator, WorkItem,
};

/// A scoped-thread work-stealing executor for embarrassingly parallel
/// sweeps (seed × config cells). No dependencies beyond `std`.
#[derive(Debug, Clone, Copy)]
pub struct ParallelSweep {
    threads: usize,
}

impl ParallelSweep {
    /// An executor with exactly `threads` workers (clamped to ≥ 1).
    /// One thread degenerates to the plain sequential loop.
    pub fn new(threads: usize) -> Self {
        ParallelSweep {
            threads: threads.max(1),
        }
    }

    /// An executor sized to the machine's available parallelism.
    pub fn available() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ParallelSweep::new(threads)
    }

    /// Worker count.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Compute `f(0), f(1), …, f(n-1)` across the worker pool and return
    /// the results **in index order** — bit-identical to
    /// `(0..n).map(f).collect()` whatever the thread interleaving.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = f(i);
                    if let Ok(mut slot) = slots[i].lock() {
                        *slot = Some(out);
                    }
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot.into_inner() {
                Ok(Some(v)) => v,
                // Unreachable unless a worker panicked, and a worker panic
                // already propagates out of thread::scope above.
                _ => panic!("parallel sweep produced no result for job {i}"),
            })
            .collect()
    }
}

/// One batch shipped to a shard worker: the snapshot to compute against,
/// the items the worker's band owns, and where to send the answers.
struct ShardJob {
    world: AudibleWorld,
    items: Vec<WorkItem>,
    done: mpsc::Sender<Vec<ShardResult>>,
}

/// A persistent pool of shard workers implementing
/// [`diknn_sim::ShardExecutor`] — the threaded half of the sharded engine
/// (DESIGN.md §15).
///
/// Each worker owns one contiguous x-band of the field. A batch is
/// partitioned by the *sender's position at transmission time* under
/// [`ShardMap`] (total and deterministic, including points exactly on a
/// band edge), each worker computes its items' audible sets against the
/// shared immutable [`AudibleWorld`] snapshot, and the pool merges the
/// per-shard answers back into `(time, handle)` order before returning.
/// Workers never mutate simulation state and never draw randomness, so
/// thread scheduling can change *when* an audible set is computed, never
/// what the engine observes — the engine additionally guards every
/// consumption with a `(grid epoch, alive version)` stamp check, making
/// bit-identity to the sequential engine unconditional.
pub struct ShardPool {
    senders: Vec<mpsc::Sender<ShardJob>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("shards", &self.senders.len())
            .finish()
    }
}

impl ShardPool {
    /// Spawn a pool with one worker per shard (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = mpsc::channel::<ShardJob>();
            let spawned = std::thread::Builder::new()
                .name(format!("diknn-shard-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let mut out = Vec::with_capacity(job.items.len());
                        for item in &job.items {
                            let mut receivers = Vec::new();
                            job.world.compute(item, &mut receivers);
                            out.push(ShardResult {
                                item: *item,
                                receivers,
                            });
                        }
                        // A send error means the submitting side gave up
                        // (compute_batch recomputes inline on any channel
                        // failure), so dropping the result is safe.
                        let _ = job.done.send(out);
                    }
                });
            match spawned {
                Ok(handle) => {
                    senders.push(tx);
                    workers.push(handle);
                }
                // Spawn failure (resource exhaustion) degrades to fewer
                // workers — zero workers falls back to inline compute in
                // `compute_batch`. Same answers either way.
                Err(_) => drop(tx),
            }
        }
        ShardPool { senders, workers }
    }

    /// Number of shard workers.
    #[inline]
    pub fn shards(&self) -> usize {
        self.senders.len()
    }
}

impl ShardExecutor for ShardPool {
    fn compute_batch(&mut self, world: &AudibleWorld, items: Vec<WorkItem>) -> Vec<ShardResult> {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if self.senders.is_empty() {
            return InlineExecutor.compute_batch(world, items);
        }
        // Partition by the sender's band at transmission time. Items keep
        // their submission order inside each band; the merge below
        // re-establishes the global (time, handle) order regardless.
        let map = ShardMap::new(world.field(), self.senders.len());
        let mut parts: Vec<Vec<WorkItem>> = vec![Vec::new(); self.senders.len()];
        for item in items {
            let band = map.shard_of(world.position(item.from, item.at));
            parts[band].push(item);
        }
        let (done_tx, done_rx) = mpsc::channel::<Vec<ShardResult>>();
        let mut dispatched = 0usize;
        let mut merged = Vec::with_capacity(n);
        for (band, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let job = ShardJob {
                world: world.clone(),
                items: part,
                done: done_tx.clone(),
            };
            match self.senders[band].send(job) {
                Ok(()) => dispatched += 1,
                // A dead worker (panicked) degrades to inline compute —
                // same answers, no parallelism.
                Err(mpsc::SendError(job)) => {
                    merged.extend(InlineExecutor.compute_batch(world, job.items));
                }
            }
        }
        drop(done_tx);
        for _ in 0..dispatched {
            match done_rx.recv() {
                Ok(part) => merged.extend(part),
                Err(_) => break,
            }
        }
        // Deterministic merge: results return to the engine in
        // (time, tie-break handle) order whatever the thread interleaving.
        merged.sort_unstable_by_key(|r| (r.item.at, r.item.handle));
        merged
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing the channels ends the worker loops; join so no thread
        // outlives the pool.
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Advance `sim` to `until` on the sharded run loop with `shards` spatial
/// shards. `shards <= 1` uses the thread-free [`InlineExecutor`] (the
/// 1-shard baseline); larger counts spin up a [`ShardPool`] for the call.
/// Either way the result is bit-identical to `sim.run_until(until)`.
pub fn run_sharded<P: Protocol>(sim: &mut Simulator<P>, until: SimTime, shards: usize) -> SimTime {
    if shards <= 1 {
        let mut exec = InlineExecutor;
        sim.run_until_sharded(until, &mut exec)
    } else {
        let mut pool = ShardPool::new(shards);
        sim.run_until_sharded(until, &mut pool)
    }
}

/// [`run_sharded`] to the configured `SimConfig::time_limit` — the
/// sharded analogue of [`Simulator::run`].
pub fn run_sharded_to_limit<P: Protocol>(sim: &mut Simulator<P>, shards: usize) -> SimTime {
    let limit = SimTime::ZERO + sim.ctx().config().time_limit;
    run_sharded(sim, limit, shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        let sweep = ParallelSweep::new(4);
        // Jobs finish out of order (later indices are cheaper), results
        // must not.
        let got = sweep.map(32, |i| {
            std::thread::sleep(std::time::Duration::from_micros(((32 - i) as u64) * 50));
            i * i
        });
        assert_eq!(got, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_is_the_sequential_loop() {
        let sweep = ParallelSweep::new(1);
        assert_eq!(sweep.threads(), 1);
        assert_eq!(sweep.map(5, |i| i + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ParallelSweep::new(0).threads(), 1);
        assert!(ParallelSweep::available().threads() >= 1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let sweep = ParallelSweep::new(8);
        assert_eq!(sweep.map(0, |i| i), Vec::<usize>::new());
        assert_eq!(sweep.map(1, |i| i), vec![0]);
    }

    #[test]
    fn more_threads_than_jobs() {
        let sweep = ParallelSweep::new(16);
        assert_eq!(sweep.map(3, |i| i * 2), vec![0, 2, 4]);
    }
}
