//! Exact ground truth: who *really* were the k nearest neighbours at the
//! query's valid time T.
//!
//! The paper measures **pre-accuracy** (T = issue time; "snapshot results
//! are better") and **post-accuracy** (T = result arrival; "newer results
//! are better"), §3.1. Mobility plans are analytic, so both are exact.

use diknn_geom::Point;
use diknn_rtree::RTree;
use diknn_sim::{NodeId, SharedMobility};

/// Ground-truth oracle over the shared mobility plans of a run.
pub struct GroundTruth {
    plans: Vec<SharedMobility>,
    /// Only the first `data_nodes` plans are query-answerable sensor nodes
    /// (the rest are infrastructure such as Peer-tree clusterheads).
    data_nodes: usize,
}

impl GroundTruth {
    pub fn new(plans: Vec<SharedMobility>, data_nodes: usize) -> Self {
        assert!(data_nodes <= plans.len());
        GroundTruth { plans, data_nodes }
    }

    /// Exact positions of all data nodes at time `t`.
    pub fn positions_at(&self, t: f64) -> Vec<Point> {
        self.plans[..self.data_nodes]
            .iter()
            .map(|m| m.position_at(t))
            .collect()
    }

    /// The exact k nearest data nodes to `q` at time `t` (ascending by
    /// distance; ties by id). Uses the R-tree substrate.
    pub fn knn_at(&self, q: Point, k: usize, t: f64) -> Vec<NodeId> {
        let tree = RTree::bulk_load_points(
            self.positions_at(t)
                .into_iter()
                .enumerate()
                .map(|(i, p)| (p, NodeId(i as u32))),
        );
        tree.knn(q, k).into_iter().map(|e| e.item).collect()
    }

    /// Fraction of `answer` entries that are within the exact k nearest at
    /// time `t` — the paper's "percentage ratio the correct KNNs are
    /// returned". An empty answer scores 0.
    pub fn accuracy(&self, answer: &[NodeId], q: Point, k: usize, t: f64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        let truth = self.knn_at(q, k, t);
        let hits = answer.iter().filter(|n| truth.contains(n)).count();
        hits as f64 / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diknn_mobility::{StaticMobility, WaypointTrace};
    use std::sync::Arc;

    fn static_oracle(pts: &[(f64, f64)]) -> GroundTruth {
        let plans: Vec<SharedMobility> = pts
            .iter()
            .map(|&(x, y)| Arc::new(StaticMobility::new(Point::new(x, y))) as SharedMobility)
            .collect();
        let n = plans.len();
        GroundTruth::new(plans, n)
    }

    #[test]
    fn knn_matches_hand_computation() {
        let o = static_oracle(&[(0.0, 0.0), (1.0, 0.0), (5.0, 0.0), (2.0, 0.0)]);
        let knn = o.knn_at(Point::new(0.9, 0.0), 2, 0.0);
        assert_eq!(knn, vec![NodeId(1), NodeId(0)]);
    }

    #[test]
    fn accuracy_counts_hits_over_k() {
        let o = static_oracle(&[(0.0, 0.0), (1.0, 0.0), (5.0, 0.0), (2.0, 0.0)]);
        let q = Point::new(0.0, 0.0);
        assert_eq!(o.accuracy(&[NodeId(0), NodeId(1)], q, 2, 0.0), 1.0);
        assert_eq!(o.accuracy(&[NodeId(0), NodeId(2)], q, 2, 0.0), 0.5);
        assert_eq!(o.accuracy(&[], q, 2, 0.0), 0.0);
    }

    #[test]
    fn infrastructure_nodes_excluded() {
        let plans: Vec<SharedMobility> = vec![
            Arc::new(StaticMobility::new(Point::new(0.0, 0.0))),
            Arc::new(StaticMobility::new(Point::new(1.0, 0.0))), // infra
        ];
        let o = GroundTruth::new(plans, 1);
        let knn = o.knn_at(Point::new(1.0, 0.0), 2, 0.0);
        assert_eq!(knn, vec![NodeId(0)]);
    }

    #[test]
    fn truth_changes_over_time_with_mobility() {
        // Node 1 starts far and drives past the query point.
        let mover =
            WaypointTrace::at_constant_speed(&[Point::new(100.0, 0.0), Point::new(0.0, 0.0)], 10.0);
        let plans: Vec<SharedMobility> = vec![
            Arc::new(StaticMobility::new(Point::new(5.0, 0.0))),
            Arc::new(mover),
        ];
        let o = GroundTruth::new(plans, 2);
        let q = Point::new(0.0, 0.0);
        assert_eq!(o.knn_at(q, 1, 0.0), vec![NodeId(0)]);
        assert_eq!(o.knn_at(q, 1, 10.0), vec![NodeId(1)]); // mover at origin
    }
}
