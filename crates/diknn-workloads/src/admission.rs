//! Serving-layer experiment helpers: DIKNN under sustained load with
//! sink-side admission control, spatial query merging and short-TTL result
//! caching (DESIGN.md §12).
//!
//! The MAC-contention collapse is the motivating failure: at 10 q/s over
//! 500 nodes the unprotected engine drops to ~0.06 post-accuracy because
//! every query launches a full itinerary into an already saturated channel.
//! The serving layer sheds and coalesces that load *at the sink*, before
//! any radio traffic exists. This module packages the experiment plumbing
//! shared by the `admission` bench binary and the overload tests:
//! [`admission_experiment`] builds a [`QueryLoad`]-driven DIKNN experiment
//! with a given [`ServingConfig`], and [`ServingSummary`] folds run metrics
//! into the serving ledger (admitted / rejected / merged / cache-hit).

use diknn_core::{DiknnConfig, QueryStatus, ServingConfig};

use crate::metrics::{status_index, RunMetrics};
use crate::runner::{Experiment, ProtocolKind};
use crate::scenario::ScenarioConfig;
use crate::workload::QueryLoad;

/// Build a DIKNN experiment driving `load` arrivals over a `nodes`-node
/// scenario with the given serving layer. Invariant checking (including the
/// admission-soundness law) stays on — every serving run is also a
/// correctness check.
pub fn admission_experiment(
    nodes: usize,
    duration: f64,
    max_speed: f64,
    load: &QueryLoad,
    serving: ServingConfig,
) -> Experiment {
    Experiment::new(
        ProtocolKind::Diknn(DiknnConfig {
            serving,
            ..DiknnConfig::default()
        }),
        ScenarioConfig {
            nodes,
            duration,
            max_speed,
            ..ScenarioConfig::default()
        },
        load.workload(),
    )
}

/// How a batch of runs' queries were served, folded from
/// [`RunMetrics::status_counts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServingSummary {
    /// Total queries issued.
    pub queries: usize,
    /// Queries that ran their own itinerary to completion.
    pub completed: usize,
    /// Degraded executions: partial-timeout + token-lost + sink-unreachable.
    pub degraded: usize,
    /// Terminally rejected by admission control (never executed).
    pub rejected: usize,
    /// Answered by riding another query's itinerary.
    pub merged: usize,
    /// Answered from the sink result cache.
    pub cache_hits: usize,
    /// Still pending after `finish` — always a bug if nonzero.
    pub pending: usize,
}

impl ServingSummary {
    pub fn from_runs(runs: &[RunMetrics]) -> Self {
        let mut s = ServingSummary::default();
        for m in runs {
            s.queries += m.queries;
            s.completed += m.status_counts[status_index(QueryStatus::Completed)];
            s.degraded += m.status_counts[status_index(QueryStatus::PartialTimeout)]
                + m.status_counts[status_index(QueryStatus::TokenLost)]
                + m.status_counts[status_index(QueryStatus::SinkUnreachable)];
            s.rejected += m.status_counts[status_index(QueryStatus::Rejected)];
            s.merged += m.status_counts[status_index(QueryStatus::Merged)];
            s.cache_hits += m.status_counts[status_index(QueryStatus::CacheHit)];
            s.pending += m.status_counts[status_index(QueryStatus::Pending)];
        }
        s
    }

    /// Queries that got a KNN answer: completed, merged, or cache-served.
    pub fn answered(&self) -> usize {
        self.completed + self.merged + self.cache_hits
    }

    /// Fraction of all queries that got an answer.
    pub fn answered_rate(&self) -> f64 {
        self.answered() as f64 / self.queries.max(1) as f64
    }

    /// Every query reached a terminal classification.
    pub fn all_terminal(&self) -> bool {
        self.pending == 0
            && self.queries
                == self.completed + self.degraded + self.rejected + self.merged + self.cache_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_folds_status_counts() {
        let mut a = crate::metrics::RunMetrics::compute(
            &[],
            &diknn_sim::SimStats::default(),
            0.0,
            &diknn_sim::FlowLedger::default(),
            &crate::GroundTruth::new(Vec::new(), 0),
        );
        a.queries = 10;
        a.status_counts = [4, 1, 0, 0, 0, 2, 2, 1];
        let s = ServingSummary::from_runs(&[a.clone(), a]);
        assert_eq!(s.queries, 20);
        assert_eq!(s.completed, 8);
        assert_eq!(s.degraded, 2);
        assert_eq!(s.rejected, 4);
        assert_eq!(s.merged, 4);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.answered(), 14);
        assert!((s.answered_rate() - 0.7).abs() < 1e-12);
        assert!(s.all_terminal());
    }

    #[test]
    fn unclassified_queries_fail_all_terminal() {
        let s = ServingSummary {
            queries: 5,
            completed: 4,
            pending: 1,
            ..ServingSummary::default()
        };
        assert!(!s.all_terminal());
        // A count that doesn't add up is also non-terminal (lost query).
        let s = ServingSummary {
            queries: 5,
            completed: 4,
            ..ServingSummary::default()
        };
        assert!(!s.all_terminal());
    }

    /// End-to-end: an overloaded small scenario with the full serving layer
    /// classifies every query, exercises at least one degradation path, and
    /// passes the admission-soundness law (checked inside `run_once`).
    #[test]
    fn overloaded_run_serves_and_classifies_every_query() {
        let load = QueryLoad {
            rate_qps: 20.0,
            k: 8,
            first_at: 2.0,
            last_at: 10.0,
            edge_margin: 15.0,
            max_queries: None,
        };
        let serving = ServingConfig {
            max_in_flight: 2,
            merge_radius_m: 60.0,
            cache_radius_m: 40.0,
            cache_ttl_s: 4.0,
            ..ServingConfig::enabled()
        };
        let exp = admission_experiment(120, 25.0, 0.0, &load, serving);
        let m = exp.run_once(5);
        let s = ServingSummary::from_runs(&[m]);
        assert!(s.queries >= 20, "{s:?}");
        assert!(s.all_terminal(), "{s:?}");
        assert!(
            s.rejected + s.merged + s.cache_hits > 0,
            "an overloaded run must exercise the serving layer: {s:?}"
        );
        assert!(s.answered() > 0, "{s:?}");
    }
}
