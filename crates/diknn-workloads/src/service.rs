//! Resident service mode: a long-lived simulator fed by a streaming
//! workload, with snapshot/restore and rolling operational metrics.
//!
//! The batch drivers in [`crate::runner`] build a simulator, run it to a
//! fixed horizon and tear it down. [`ServiceRun`] instead keeps one
//! simulator resident and advances it in fixed *epochs*: before each epoch
//! the driver derives that epoch's query arrivals statelessly from
//! `(seed, epoch)` ([`crate::workload::epoch_arrivals`]), streams them into
//! the running protocol through [`diknn_core::Diknn::inject_requests`], and
//! then runs the event loop to the epoch boundary. Node churn
//! (leave/rejoin with state loss) rides on the ordinary fault plan.
//!
//! # Snapshot/restore and the equivalence law
//!
//! [`ServiceRun::snapshot`] captures the *entire* mutable state — the
//! engine snapshot (clock, RNG streams, event queue, neighbour tables,
//! energy, lifecycle, flight recorder), the protocol's mutable state, and
//! the driver's own counters — at an epoch boundary.
//! [`ServiceRun::restore`] rebuilds the run from the bytes plus the same
//! [`ServiceConfig`] and continues. Because arrivals restart their
//! exponential clock at every epoch boundary, the restored run regenerates
//! the identical workload for all later epochs, which yields the law the
//! test-suite enforces bit-exactly via [`ServiceRun::trace_fingerprint`]:
//!
//! ```text
//! run(2T)  ≡  run(T) + snapshot + restore + run(2T)
//! ```
//!
//! # Snapshot format versioning
//!
//! The service stream is framed by [`SERVICE_SNAP_VERSION`] and embeds the
//! engine stream (framed by [`diknn_sim::SNAP_VERSION`]) as an opaque byte
//! field. Any change to the byte layout of either layer — a field added,
//! removed, reordered or re-typed anywhere in the snapshotted state —
//! requires bumping the corresponding version constant; restore refuses
//! mismatched versions rather than guessing. Static configuration is never
//! serialized: the caller re-supplies [`ServiceConfig`], and a fingerprint
//! of it (plus the seed) is checked against the stream.

use std::collections::{BTreeSet, VecDeque};

use diknn_core::{Diknn, DiknnConfig, DiknnMsg, KnnProtocol, QueryOutcome, QueryStatus};
use diknn_sim::{Ctx, FaultPlan, NeighborIndex, SimTime, Simulator, TraceConfig};
use diknn_snap::{Snap, SnapError, SnapReader, SnapWriter};

use crate::scenario::ScenarioConfig;
use crate::workload::{epoch_arrivals, RateSchedule};

/// Version of the service-layer snapshot framing. Bump on any change to
/// the byte layout written by [`ServiceRun::snapshot`] (the embedded
/// engine stream is versioned separately by [`diknn_sim::SNAP_VERSION`]).
pub const SERVICE_SNAP_VERSION: u32 = 1;

/// Static configuration of a resident service run. Everything here is
/// immutable for the lifetime of the run and must be re-supplied verbatim
/// to [`ServiceRun::restore`] (fingerprint-enforced).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Network scenario. `scenario.duration` must cover the longest
    /// horizon the service will be driven to: mobility plans are built
    /// once, for `duration + 30 s`.
    pub scenario: ScenarioConfig,
    /// Protocol configuration (including the sink-side serving layer).
    pub diknn: DiknnConfig,
    /// Arrival-rate schedule for the streaming workload.
    pub schedule: RateSchedule,
    /// Fault plan; use [`FaultPlan::churning`] for continuous node churn.
    pub faults: FaultPlan,
    /// Neighbours requested per query.
    pub k: usize,
    /// Query points keep this margin from the field edge (metres).
    pub edge_margin: f64,
    /// Epoch length in seconds. Arrivals are derived per epoch and
    /// snapshots are taken at epoch boundaries.
    pub epoch_s: f64,
    /// Spatial index for the engine's radio hot path. The grid and the
    /// brute-force oracle must behave identically, so the equivalence laws
    /// are exercised under both.
    pub neighbor_index: NeighborIndex,
    /// Rolling window (number of recent terminal queries) for the latency
    /// percentiles in [`ServiceMetrics`].
    pub latency_window: usize,
}

impl ServiceConfig {
    /// A service configuration with serving-layer defaults: k = 10,
    /// 15 m edge margin, 5 s epochs, a 256-query metrics window and no
    /// faults.
    pub fn new(scenario: ScenarioConfig, schedule: RateSchedule) -> Self {
        ServiceConfig {
            scenario,
            diknn: DiknnConfig::default(),
            schedule,
            faults: FaultPlan::default(),
            k: 10,
            edge_margin: 15.0,
            epoch_s: 5.0,
            neighbor_index: NeighborIndex::Grid,
            latency_window: 256,
        }
    }

    /// Fingerprint of the static configuration and seed, embedded in
    /// snapshots so restore can refuse a mismatched config. `Debug`
    /// formatting is stable for the plain-data types involved.
    fn fingerprint(&self, seed: u64) -> u64 {
        let mut w = SnapWriter::new();
        format!("{self:?}").snap(&mut w);
        w.put_u64(seed);
        diknn_snap::fingerprint(&w.into_bytes())
    }
}

/// Rolling operational metrics of a [`ServiceRun`], exported in a
/// scrape-friendly text format by [`ServiceRun::metrics_export`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetrics {
    /// Epochs completed so far.
    pub epoch: u64,
    /// Simulated time, seconds.
    pub sim_time_s: f64,
    /// Requests streamed into the protocol so far.
    pub injected: u64,
    /// Requests whose sink actually issued them (allocated an outcome).
    /// The rest had an offline sink at issue time — under churn or crash
    /// plans the engine suppresses timers of down nodes, so the request
    /// dies client-side before the protocol ever sees it.
    pub issued: u64,
    /// Injected requests that never issued (`injected - issued`); nonzero
    /// only under churn/crash fault plans.
    pub never_issued: u64,
    /// Issued requests that reached a terminal [`QueryStatus`].
    pub terminal: u64,
    /// Issued requests not yet terminal.
    pub pending: u64,
    /// Fraction of terminal requests that ended with an answer
    /// (`Completed`, `Merged` or `CacheHit`); 0 while nothing is terminal.
    pub completion_rate: f64,
    /// Median sink latency over the rolling window, seconds.
    pub latency_p50_s: f64,
    /// 95th-percentile sink latency over the rolling window, seconds.
    pub latency_p95_s: f64,
    /// Total per-query (flow-attributed) radio energy divided by terminal
    /// queries, joules.
    pub joules_per_query: f64,
    /// Nodes currently up.
    pub nodes_alive: u64,
}

impl ServiceMetrics {
    /// Render as one-metric-per-line `name value` text (Prometheus text
    /// exposition style), suitable for appending to a scrape file.
    pub fn export(&self) -> String {
        let mut s = String::new();
        let mut line = |name: &str, v: f64| {
            s.push_str("diknn_service_");
            s.push_str(name);
            s.push(' ');
            s.push_str(&format!("{v}"));
            s.push('\n');
        };
        line("epoch", self.epoch as f64);
        line("sim_time_s", self.sim_time_s);
        line("injected_total", self.injected as f64);
        line("issued_total", self.issued as f64);
        line("never_issued_total", self.never_issued as f64);
        line("terminal_total", self.terminal as f64);
        line("pending", self.pending as f64);
        line("completion_rate", self.completion_rate);
        line("latency_p50_s", self.latency_p50_s);
        line("latency_p95_s", self.latency_p95_s);
        line("joules_per_query", self.joules_per_query);
        line("nodes_alive", self.nodes_alive as f64);
        s
    }
}

/// A resident DIKNN deployment: one simulator kept alive across epochs,
/// fed by streaming arrivals, snapshottable at epoch boundaries.
pub struct ServiceRun {
    cfg: ServiceConfig,
    seed: u64,
    sim: Simulator<Diknn>,
    /// Epochs completed (also: the next epoch to run).
    epoch: u64,
    /// Requests injected so far.
    injected: u64,
    /// Qids already counted into the rolling metrics.
    counted: BTreeSet<u32>,
    /// Rolling window of recent terminal-query latencies, seconds.
    latencies: VecDeque<f64>,
    terminal: u64,
    completed: u64,
}

impl ServiceRun {
    /// Build and start a fresh service run. The simulator's neighbour
    /// tables are pre-warmed (steady-state beaconing) and `on_start` has
    /// run; no workload is injected yet.
    pub fn new(cfg: ServiceConfig, seed: u64) -> Self {
        assert!(
            cfg.epoch_s > 0.0 && cfg.epoch_s.is_finite(),
            "epoch length must be positive"
        );
        assert!(cfg.latency_window >= 1, "latency window must be non-empty");
        let plans = cfg.scenario.build(seed);
        let mut sim_cfg = cfg.scenario.sim_config();
        sim_cfg.faults = cfg.faults.clone();
        sim_cfg.neighbor_index = cfg.neighbor_index;
        sim_cfg.trace = TraceConfig::enabled();
        let mut sim = Simulator::new(
            sim_cfg,
            plans,
            Diknn::new(cfg.diknn.clone(), Vec::new()),
            seed,
        );
        sim.warm_neighbor_tables();
        sim.start();
        ServiceRun {
            cfg,
            seed,
            sim,
            epoch: 0,
            injected: 0,
            counted: BTreeSet::new(),
            latencies: VecDeque::new(),
            terminal: 0,
            completed: 0,
        }
    }

    /// Advance the run by `n` epochs: for each, derive the epoch's
    /// arrivals, stream them in, and run the event loop to the epoch
    /// boundary.
    pub fn run_epochs(&mut self, n: u64) {
        for _ in 0..n {
            let start = self.epoch as f64 * self.cfg.epoch_s;
            let end = (self.epoch + 1) as f64 * self.cfg.epoch_s;
            let reqs = epoch_arrivals(
                &self.cfg.scenario,
                &self.cfg.schedule,
                self.cfg.k,
                self.cfg.edge_margin,
                self.seed,
                self.epoch,
                start,
                end,
            );
            self.injected += reqs.len() as u64;
            self.sim.drive(|p, ctx| p.inject_requests(ctx, &reqs));
            self.sim.run_until(SimTime::from_secs_f64(end));
            self.epoch += 1;
            self.absorb_outcomes();
        }
    }

    /// Fold newly-terminal outcomes into the rolling metrics.
    fn absorb_outcomes(&mut self) {
        let mut fresh: Vec<(u32, QueryStatus, Option<f64>)> = Vec::new();
        for o in self.sim.protocol().outcomes() {
            if o.status == QueryStatus::Pending || self.counted.contains(&o.qid) {
                continue;
            }
            let latency = o
                .completed_at
                .map(|done| done.as_secs_f64() - o.issued_at.as_secs_f64());
            fresh.push((o.qid, o.status, latency));
        }
        for (qid, status, latency) in fresh {
            self.counted.insert(qid);
            self.terminal += 1;
            if matches!(
                status,
                QueryStatus::Completed | QueryStatus::Merged | QueryStatus::CacheHit
            ) {
                self.completed += 1;
            }
            if let Some(l) = latency {
                if self.latencies.len() == self.cfg.latency_window {
                    self.latencies.pop_front();
                }
                self.latencies.push_back(l);
            }
        }
    }

    /// Current rolling metrics.
    pub fn metrics(&self) -> ServiceMetrics {
        let mut sorted: Vec<f64> = self.latencies.iter().copied().collect();
        sorted.sort_by(f64::total_cmp);
        let pct = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            sorted[((sorted.len() - 1) as f64 * q).round() as usize]
        };
        let energy: f64 = self.sim.ctx().flow_energy_j().total();
        let issued = self.sim.protocol().outcomes().len() as u64;
        ServiceMetrics {
            epoch: self.epoch,
            sim_time_s: self.sim.ctx().now().as_secs_f64(),
            injected: self.injected,
            issued,
            never_issued: self.injected - issued,
            terminal: self.terminal,
            pending: issued - self.terminal,
            completion_rate: self.completed as f64 / self.terminal.max(1) as f64,
            latency_p50_s: pct(0.50),
            latency_p95_s: pct(0.95),
            joules_per_query: energy / self.terminal.max(1) as f64,
            nodes_alive: self.sim.ctx().alive_count() as u64,
        }
    }

    /// [`ServiceMetrics::export`] of the current metrics.
    pub fn metrics_export(&self) -> String {
        self.metrics().export()
    }

    /// Serialize the run (engine + protocol + driver counters). Call at an
    /// epoch boundary — i.e. between [`ServiceRun::run_epochs`] calls —
    /// for the restore-equivalence law to hold.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        diknn_snap::write_header(&mut w, SERVICE_SNAP_VERSION);
        w.put_u64(self.cfg.fingerprint(self.seed));
        w.put_u64(self.seed);
        w.put_u64(self.epoch);
        w.put_u64(self.injected);
        self.counted.snap(&mut w);
        self.latencies.snap(&mut w);
        w.put_u64(self.terminal);
        w.put_u64(self.completed);
        self.sim.snapshot().snap(&mut w);
        w.into_bytes()
    }

    /// Rebuild a run from [`ServiceRun::snapshot`] bytes and the original
    /// configuration. The mobility plans are rebuilt deterministically
    /// from the scenario and seed; neighbour tables come from the stream,
    /// so no re-warming happens (it would clobber the restored state).
    pub fn restore(bytes: &[u8], cfg: ServiceConfig) -> Result<Self, SnapError> {
        let mut r = SnapReader::new(bytes);
        diknn_snap::read_header(&mut r, SERVICE_SNAP_VERSION)?;
        let fp = r.take_u64()?;
        let seed = r.take_u64()?;
        if fp != cfg.fingerprint(seed) {
            return Err(SnapError::FingerprintMismatch("ServiceConfig"));
        }
        let epoch = r.take_u64()?;
        let injected = r.take_u64()?;
        let counted: BTreeSet<u32> = Snap::unsnap(&mut r)?;
        let latencies: VecDeque<f64> = Snap::unsnap(&mut r)?;
        let terminal = r.take_u64()?;
        let completed = r.take_u64()?;
        let sim_bytes: Vec<u8> = Snap::unsnap(&mut r)?;
        r.finish()?;
        let plans = cfg.scenario.build(seed);
        let mut sim_cfg = cfg.scenario.sim_config();
        sim_cfg.faults = cfg.faults.clone();
        sim_cfg.neighbor_index = cfg.neighbor_index;
        sim_cfg.trace = TraceConfig::enabled();
        let sim = Simulator::restore(
            &sim_bytes,
            sim_cfg,
            plans,
            Diknn::new(cfg.diknn.clone(), Vec::new()),
        )?;
        Ok(ServiceRun {
            cfg,
            seed,
            sim,
            epoch,
            injected,
            counted,
            latencies,
            terminal,
            completed,
        })
    }

    /// FNV-1a fingerprint of the serialized flight-recorder contents. Two
    /// runs with bit-identical trace histories agree on this; it is the
    /// cheap equality the restore-equivalence tests assert.
    pub fn trace_fingerprint(&self) -> u64 {
        let mut w = SnapWriter::new();
        self.sim.ctx().trace().snap(&mut w);
        diknn_snap::fingerprint(&w.into_bytes())
    }

    /// Tear down: apply the protocol's end-of-run finalisation (classifies
    /// still-pending queries) and hand back protocol and context for
    /// invariant checks and metrics.
    pub fn finish(self) -> (Diknn, Ctx<DiknnMsg>) {
        let (mut protocol, ctx) = self.sim.into_parts();
        protocol.finish(&ctx);
        (protocol, ctx)
    }

    /// Epochs completed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Requests streamed into the protocol so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The run seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configuration this run was built from.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The resident simulator (read-only).
    pub fn sim(&self) -> &Simulator<Diknn> {
        &self.sim
    }

    /// Query outcomes recorded so far (terminal and pending).
    pub fn outcomes(&self) -> &[QueryOutcome] {
        self.sim.protocol().outcomes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants;

    fn small_cfg() -> ServiceConfig {
        ServiceConfig {
            scenario: ScenarioConfig {
                nodes: 120,
                max_speed: 0.0,
                duration: 120.0,
                ..ScenarioConfig::default()
            },
            epoch_s: 2.0,
            ..ServiceConfig::new(ScenarioConfig::default(), RateSchedule::constant(0.8))
        }
    }

    #[test]
    fn service_runs_and_completes_queries() {
        let mut run = ServiceRun::new(small_cfg(), 11);
        run.run_epochs(10);
        assert_eq!(run.epoch(), 10);
        assert!(run.injected() > 0, "no arrivals in 20 s at 0.8 qps");
        let m = run.metrics();
        assert!(m.terminal > 0, "nothing terminal after 20 s");
        assert!(m.completion_rate > 0.5, "completion {}", m.completion_rate);
        assert!(m.latency_p50_s.is_finite() && m.latency_p50_s >= 0.0);
        let (protocol, ctx) = run.finish();
        invariants::assert_clean(ctx.trace(), protocol.outcomes());
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let cfg = small_cfg();
        // Uninterrupted reference: 8 epochs straight.
        let mut full = ServiceRun::new(cfg.clone(), 23);
        full.run_epochs(8);

        // Interrupted: 4 epochs, snapshot, restore, 4 more.
        let mut half = ServiceRun::new(cfg.clone(), 23);
        half.run_epochs(4);
        let bytes = half.snapshot();
        drop(half);
        let mut restored = ServiceRun::restore(&bytes, cfg).expect("restore");
        restored.run_epochs(4);

        assert_eq!(restored.epoch(), full.epoch());
        assert_eq!(restored.injected(), full.injected());
        assert_eq!(restored.trace_fingerprint(), full.trace_fingerprint());
        assert_eq!(restored.metrics(), full.metrics());
    }

    #[test]
    fn restore_rejects_config_mismatch() {
        let mut run = ServiceRun::new(small_cfg(), 5);
        run.run_epochs(1);
        let bytes = run.snapshot();
        let mut other = small_cfg();
        other.k = 7;
        match ServiceRun::restore(&bytes, other) {
            Err(SnapError::FingerprintMismatch("ServiceConfig")) => {}
            Err(e) => panic!("expected config fingerprint mismatch, got {e:?}"),
            Ok(_) => panic!("restore accepted a mismatched config"),
        }
    }

    #[test]
    fn snapshot_rejects_version_skew() {
        let mut run = ServiceRun::new(small_cfg(), 5);
        run.run_epochs(1);
        let mut bytes = run.snapshot();
        // Corrupt the version field (bytes 4..8, little-endian after magic).
        bytes[4] ^= 0xFF;
        assert!(matches!(
            ServiceRun::restore(&bytes, small_cfg()),
            Err(SnapError::BadVersion { .. })
        ));
    }

    #[test]
    fn metrics_export_is_line_oriented() {
        let mut run = ServiceRun::new(small_cfg(), 3);
        run.run_epochs(3);
        let text = run.metrics_export();
        for line in text.lines() {
            let mut parts = line.split(' ');
            let name = parts.next().unwrap();
            let value = parts.next().unwrap();
            assert!(name.starts_with("diknn_service_"), "bad name {name}");
            assert!(value.parse::<f64>().is_ok(), "bad value {value}");
            assert_eq!(parts.next(), None);
        }
        assert!(text.contains("diknn_service_latency_p50_s "));
        assert!(text.contains("diknn_service_joules_per_query "));
    }
}
