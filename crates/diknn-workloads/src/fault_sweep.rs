//! Pre-packaged fault-sweep cells: how each protocol degrades under node
//! churn and bursty links.
//!
//! The sweep axes mirror the robustness questions the paper's §5 leaves
//! open: DIKNN's itinerary is a single travelling token per sector, so a
//! crashed carrier or a loss burst on the handoff link can silently kill a
//! sector. These helpers build the [`FaultPlan`]s the `fault_sweep` bench
//! binary (and the acceptance tests) sweep over; the recovery machinery
//! under test is the token watchdog + sink retry in `diknn-core`.

use diknn_sim::{FaultPlan, GilbertElliott, LinkLossModel};

/// One point of a fault sweep: the x-axis value plus the plan it installs.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// Swept parameter (crash fraction or burst severity).
    pub x: f64,
    pub plan: FaultPlan,
}

/// Window (as fractions of the run) in which scheduled crashes land: the
/// middle of the run, so queries exist both before and after the churn.
const CRASH_WINDOW: (f64, f64) = (0.2, 0.8);

/// Fail-stop crash sweep: for each `fraction`, a plan that crashes that
/// share of nodes (uniformly inside the middle of a `duration`-second run,
/// no recovery). `0.0` yields the inert plan.
pub fn crash_cells(fractions: &[f64], duration: f64) -> Vec<FaultCell> {
    fractions
        .iter()
        .map(|&f| FaultCell {
            x: f,
            plan: if f > 0.0 {
                FaultPlan::random_crashes(f, CRASH_WINDOW.0 * duration, CRASH_WINDOW.1 * duration)
            } else {
                FaultPlan::default()
            },
        })
        .collect()
}

/// Bursty-link sweep: Gilbert–Elliott loss of growing `severity` in
/// `[0, 1]`. `0.0` yields the inert plan (Bernoulli loss from the
/// `SimConfig` stays in charge).
pub fn burst_cells(severities: &[f64]) -> Vec<FaultCell> {
    severities
        .iter()
        .map(|&s| FaultCell {
            x: s,
            plan: if s > 0.0 {
                FaultPlan::bursty(s)
            } else {
                FaultPlan::default()
            },
        })
        .collect()
}

/// The combined stress plan used by the acceptance tests: 20% of nodes
/// crash mid-run *and* links burst at half severity. Under this plan every
/// query must still terminate with a (possibly degraded) status.
pub fn churn_and_bursts(duration: f64) -> FaultPlan {
    let mut plan =
        FaultPlan::random_crashes(0.2, CRASH_WINDOW.0 * duration, CRASH_WINDOW.1 * duration);
    plan.link_loss = LinkLossModel::GilbertElliott(GilbertElliott::with_severity(0.5));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_points_are_inert() {
        let cells = crash_cells(&[0.0, 0.2], 100.0);
        assert!(cells[0].plan.is_inert());
        assert!(!cells[1].plan.is_inert());
        let cells = burst_cells(&[0.0, 0.5]);
        assert!(cells[0].plan.is_inert());
        assert!(!cells[1].plan.is_inert());
    }

    #[test]
    fn plans_validate() {
        for c in crash_cells(&[0.0, 0.1, 0.3], 60.0) {
            c.plan.validate().expect("crash plan");
        }
        for c in burst_cells(&[0.0, 0.5, 1.0]) {
            c.plan.validate().expect("burst plan");
        }
        churn_and_bursts(60.0).validate().expect("combined plan");
    }

    #[test]
    fn crash_window_sits_inside_the_run() {
        let cells = crash_cells(&[0.25], 50.0);
        let rc = cells[0].plan.random_crashes.as_ref().expect("spec");
        assert!(rc.from.as_secs_f64() >= 0.0);
        assert!(rc.until.as_secs_f64() <= 50.0);
        assert!(rc.from < rc.until);
    }
}
