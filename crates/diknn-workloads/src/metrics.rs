//! Per-run and aggregated metrics matching the paper's evaluation
//! quantities (§5.1): query latency, energy consumption, pre-/post-
//! accuracy — plus completion rate and traffic diagnostics.

use diknn_core::{QueryOutcome, QueryStatus};
use diknn_sim::SimStats;

use crate::oracle::GroundTruth;

/// Metrics of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Queries issued.
    pub queries: usize,
    /// Queries that produced an answer at the sink.
    pub completed: usize,
    /// Mean latency over completed queries, in seconds.
    pub latency_s: f64,
    /// Total protocol (non-beacon) radio energy, in joules.
    pub energy_j: f64,
    /// Mean pre-accuracy (ground truth at issue time) over all queries;
    /// unanswered queries score 0.
    pub pre_accuracy: f64,
    /// Mean post-accuracy (ground truth at result time) over all queries.
    pub post_accuracy: f64,
    /// Mean estimated boundary radius (0 for index-based protocols).
    pub boundary_radius_m: f64,
    /// Mean nodes explored per query.
    pub explored: f64,
    /// Protocol frames transmitted.
    pub tx_frames: u64,
    /// Receptions destroyed by collisions.
    pub collisions: u64,
    /// Queries per termination status: `[completed, partial-timeout,
    /// token-lost, sink-unreachable, pending]` (see
    /// [`diknn_core::QueryStatus`]). `pending` should be 0 after
    /// [`diknn_core::KnnProtocol::finish`]; a nonzero count flags a bug.
    pub status_counts: [usize; 5],
    /// Itinerary tokens re-issued by the token-loss watchdog.
    pub tokens_reissued: u64,
    /// Whole-query retries launched by sinks after silent timeouts.
    pub query_retries: u64,
    /// Nodes lost during the run (crashes plus energy deaths, minus
    /// recoveries).
    pub nodes_failed: u64,
}

/// Index of a [`QueryStatus`] in [`RunMetrics::status_counts`].
pub fn status_index(s: QueryStatus) -> usize {
    match s {
        QueryStatus::Completed => 0,
        QueryStatus::PartialTimeout => 1,
        QueryStatus::TokenLost => 2,
        QueryStatus::SinkUnreachable => 3,
        QueryStatus::Pending => 4,
    }
}

impl RunMetrics {
    /// Compute run metrics from protocol outcomes + engine stats + oracle.
    pub fn compute(
        outcomes: &[QueryOutcome],
        stats: &SimStats,
        energy_j: f64,
        oracle: &GroundTruth,
    ) -> Self {
        let queries = outcomes.len();
        let mut completed = 0usize;
        let mut latency_sum = 0.0;
        let mut pre_sum = 0.0;
        let mut post_sum = 0.0;
        let mut radius_sum = 0.0;
        let mut explored_sum = 0.0;
        let mut status_counts = [0usize; 5];
        for o in outcomes {
            radius_sum += o.boundary_radius;
            explored_sum += o.explored_nodes as f64;
            status_counts[status_index(o.status)] += 1;
            if let Some(done) = o.completed_at {
                completed += 1;
                latency_sum += (done - o.issued_at).as_secs_f64();
                pre_sum += oracle.accuracy(&o.answer, o.q, o.k, o.issued_at.as_secs_f64());
                post_sum += oracle.accuracy(&o.answer, o.q, o.k, done.as_secs_f64());
            }
        }
        let qn = queries.max(1) as f64;
        RunMetrics {
            queries,
            completed,
            latency_s: if completed > 0 {
                latency_sum / completed as f64
            } else {
                f64::NAN
            },
            energy_j,
            pre_accuracy: pre_sum / qn,
            post_accuracy: post_sum / qn,
            boundary_radius_m: radius_sum / qn,
            explored: explored_sum / qn,
            tx_frames: stats.tx_protocol_frames,
            collisions: stats.collisions,
            status_counts,
            tokens_reissued: stats.tokens_reissued,
            query_retries: stats.query_retries,
            nodes_failed: (stats.nodes_crashed + stats.energy_deaths)
                .saturating_sub(stats.nodes_recovered),
        }
    }

    /// Fraction of queries that ended with a degraded (non-completed)
    /// status.
    pub fn degraded_rate(&self) -> f64 {
        let degraded: usize = self.status_counts[1..].iter().sum();
        degraded as f64 / self.queries.max(1) as f64
    }
}

/// Mean and sample standard deviation of a metric over runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stat {
    pub mean: f64,
    pub std: f64,
}

fn stat(values: impl Iterator<Item = f64>) -> Stat {
    let vals: Vec<f64> = values.filter(|v| v.is_finite()).collect();
    if vals.is_empty() {
        return Stat {
            mean: f64::NAN,
            std: f64::NAN,
        };
    }
    let n = vals.len() as f64;
    let mean = vals.iter().sum::<f64>() / n;
    let var = if vals.len() > 1 {
        vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    Stat {
        mean,
        std: var.sqrt(),
    }
}

/// Aggregated metrics over several seeded runs (the paper averages 20).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    pub runs: usize,
    pub latency_s: Stat,
    pub energy_j: Stat,
    pub pre_accuracy: Stat,
    pub post_accuracy: Stat,
    pub completion_rate: Stat,
    pub boundary_radius_m: Stat,
    pub explored: Stat,
    /// Fraction of queries per run that ended degraded (non-completed).
    pub degraded_rate: Stat,
    /// Watchdog token re-issues per run.
    pub tokens_reissued: Stat,
    /// Sink-side whole-query retries per run.
    pub query_retries: Stat,
    /// Nodes lost per run (crashes + energy deaths − recoveries).
    pub nodes_failed: Stat,
}

impl Aggregate {
    pub fn from_runs(runs: &[RunMetrics]) -> Self {
        Aggregate {
            runs: runs.len(),
            latency_s: stat(runs.iter().map(|r| r.latency_s)),
            energy_j: stat(runs.iter().map(|r| r.energy_j)),
            pre_accuracy: stat(runs.iter().map(|r| r.pre_accuracy)),
            post_accuracy: stat(runs.iter().map(|r| r.post_accuracy)),
            completion_rate: stat(
                runs.iter()
                    .map(|r| r.completed as f64 / r.queries.max(1) as f64),
            ),
            boundary_radius_m: stat(runs.iter().map(|r| r.boundary_radius_m)),
            explored: stat(runs.iter().map(|r| r.explored)),
            degraded_rate: stat(runs.iter().map(|r| r.degraded_rate())),
            tokens_reissued: stat(runs.iter().map(|r| r.tokens_reissued as f64)),
            query_retries: stat(runs.iter().map(|r| r.query_retries as f64)),
            nodes_failed: stat(runs.iter().map(|r| r.nodes_failed as f64)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm(latency: f64, energy: f64) -> RunMetrics {
        RunMetrics {
            queries: 10,
            completed: 9,
            latency_s: latency,
            energy_j: energy,
            pre_accuracy: 0.9,
            post_accuracy: 0.95,
            boundary_radius_m: 25.0,
            explored: 42.0,
            tx_frames: 100,
            collisions: 5,
            status_counts: [9, 1, 0, 0, 0],
            tokens_reissued: 0,
            query_retries: 0,
            nodes_failed: 0,
        }
    }

    #[test]
    fn degraded_rate_counts_non_completed() {
        let mut m = rm(1.0, 0.4);
        m.status_counts = [6, 2, 1, 1, 0];
        assert!((m.degraded_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn aggregate_means_and_std() {
        let agg = Aggregate::from_runs(&[rm(1.0, 0.4), rm(2.0, 0.6)]);
        assert_eq!(agg.runs, 2);
        assert!((agg.latency_s.mean - 1.5).abs() < 1e-12);
        assert!((agg.energy_j.mean - 0.5).abs() < 1e-12);
        // Sample std of {1, 2} = 0.7071…
        assert!((agg.latency_s.std - 0.707).abs() < 1e-3);
        assert!((agg.completion_rate.mean - 0.9).abs() < 1e-12);
        assert!((agg.degraded_rate.mean - 0.1).abs() < 1e-12);
        assert_eq!(agg.tokens_reissued.mean, 0.0);
    }

    #[test]
    fn nan_latencies_are_skipped() {
        let mut bad = rm(f64::NAN, 0.4);
        bad.completed = 0;
        let agg = Aggregate::from_runs(&[bad, rm(2.0, 0.6)]);
        assert!((agg.latency_s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_run_std_is_zero() {
        let agg = Aggregate::from_runs(&[rm(1.0, 0.4)]);
        assert_eq!(agg.latency_s.std, 0.0);
    }
}
