//! Per-run and aggregated metrics matching the paper's evaluation
//! quantities (§5.1): query latency, energy consumption, pre-/post-
//! accuracy — plus completion rate and traffic diagnostics.

use diknn_core::{QueryOutcome, QueryStatus};
use diknn_sim::{FlowLedger, SimStats};

use crate::oracle::GroundTruth;

/// Per-query attribution of one run: the row-level truth behind the
/// run-level means (which silently aggregate under concurrent load).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    pub qid: u32,
    pub status: QueryStatus,
    /// Latency in seconds; NaN if the query never completed.
    pub latency_s: f64,
    /// Protocol energy attributed to this query's frames via the engine's
    /// flow ledger, in joules; 0 for untagged protocols.
    pub energy_j: f64,
    /// Ground-truth accuracy at issue time (0 if unanswered).
    pub pre_accuracy: f64,
    /// Ground-truth accuracy at result time (0 if unanswered).
    pub post_accuracy: f64,
}

/// Metrics of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Queries issued.
    pub queries: usize,
    /// Queries that produced an answer at the sink.
    pub completed: usize,
    /// Mean latency over completed queries, in seconds.
    pub latency_s: f64,
    /// Total protocol (non-beacon) radio energy, in joules.
    pub energy_j: f64,
    /// Mean pre-accuracy (ground truth at issue time) over all queries;
    /// unanswered queries score 0.
    pub pre_accuracy: f64,
    /// Mean post-accuracy (ground truth at result time) over all queries.
    pub post_accuracy: f64,
    /// Mean estimated boundary radius (0 for index-based protocols).
    pub boundary_radius_m: f64,
    /// Mean nodes explored per query.
    pub explored: f64,
    /// Protocol frames transmitted.
    pub tx_frames: u64,
    /// Receptions destroyed by collisions.
    pub collisions: u64,
    /// Queries per termination status: `[completed, partial-timeout,
    /// token-lost, sink-unreachable, pending, rejected, merged, cache-hit]`
    /// (see [`diknn_core::QueryStatus`]). `pending` should be 0 after
    /// [`diknn_core::KnnProtocol::finish`]; a nonzero count flags a bug.
    /// The last three are serving-layer outcomes and stay 0 with serving
    /// disabled.
    pub status_counts: [usize; 8],
    /// Itinerary tokens re-issued by the token-loss watchdog.
    pub tokens_reissued: u64,
    /// Whole-query retries launched by sinks after silent timeouts.
    pub query_retries: u64,
    /// Nodes lost during the run (crashes plus energy deaths, minus
    /// recoveries).
    pub nodes_failed: u64,
    /// Median latency over completed queries, in seconds (NaN if none).
    pub latency_p50_s: f64,
    /// 95th-percentile latency over completed queries (NaN if none).
    pub latency_p95_s: f64,
    /// Peak number of queries simultaneously in flight: issued but not yet
    /// completed (never-completed queries count from issue to end of run).
    pub max_in_flight: usize,
    /// Per-query attribution rows, ascending by qid.
    pub per_query: Vec<QueryRecord>,
}

/// Index of a [`QueryStatus`] in [`RunMetrics::status_counts`].
pub fn status_index(s: QueryStatus) -> usize {
    match s {
        QueryStatus::Completed => 0,
        QueryStatus::PartialTimeout => 1,
        QueryStatus::TokenLost => 2,
        QueryStatus::SinkUnreachable => 3,
        QueryStatus::Pending => 4,
        QueryStatus::Rejected => 5,
        QueryStatus::Merged => 6,
        QueryStatus::CacheHit => 7,
    }
}

/// Interpolated percentile of pre-sorted ascending values (p in [0, 1]).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Peak overlap of per-query in-flight intervals `[issued_at, completed_at)`
/// (never-completed queries stay in flight to the end of the run). Event
/// sweep with departures processed before same-instant arrivals.
fn max_in_flight(outcomes: &[QueryOutcome]) -> usize {
    let mut events: Vec<(u64, i32)> = Vec::with_capacity(outcomes.len() * 2);
    for o in outcomes {
        events.push((o.issued_at.as_nanos(), 1));
        if let Some(done) = o.completed_at {
            events.push((done.as_nanos(), -1));
        }
    }
    // (-1) sorts before (+1) at equal times: a query completing exactly as
    // another is issued does not count as overlap.
    events.sort_unstable();
    let mut cur = 0i64;
    let mut peak = 0i64;
    for (_, delta) in events {
        cur += delta as i64;
        peak = peak.max(cur);
    }
    peak.max(0) as usize
}

impl RunMetrics {
    /// Compute run metrics from protocol outcomes + engine stats + the
    /// per-flow energy ledger + oracle. `flow_energy_j` attributes joules
    /// to query ids (empty for protocols that do not tag their traffic).
    pub fn compute(
        outcomes: &[QueryOutcome],
        stats: &SimStats,
        energy_j: f64,
        flow_energy_j: &FlowLedger,
        oracle: &GroundTruth,
    ) -> Self {
        let queries = outcomes.len();
        let mut completed = 0usize;
        let mut latency_sum = 0.0;
        let mut pre_sum = 0.0;
        let mut post_sum = 0.0;
        let mut radius_sum = 0.0;
        let mut explored_sum = 0.0;
        let mut status_counts = [0usize; 8];
        let mut latencies: Vec<f64> = Vec::with_capacity(queries);
        let mut per_query: Vec<QueryRecord> = Vec::with_capacity(queries);
        for o in outcomes {
            radius_sum += o.boundary_radius;
            explored_sum += o.explored_nodes as f64;
            status_counts[status_index(o.status)] += 1;
            let mut lat = f64::NAN;
            let mut pre = 0.0;
            let mut post = 0.0;
            if let Some(done) = o.completed_at {
                completed += 1;
                lat = (done - o.issued_at).as_secs_f64();
                pre = oracle.accuracy(&o.answer, o.q, o.k, o.issued_at.as_secs_f64());
                post = oracle.accuracy(&o.answer, o.q, o.k, done.as_secs_f64());
                latency_sum += lat;
                pre_sum += pre;
                post_sum += post;
                latencies.push(lat);
            }
            per_query.push(QueryRecord {
                qid: o.qid,
                status: o.status,
                latency_s: lat,
                energy_j: flow_energy_j.get(o.qid),
                pre_accuracy: pre,
                post_accuracy: post,
            });
        }
        latencies.sort_unstable_by(f64::total_cmp);
        let qn = queries.max(1) as f64;
        RunMetrics {
            queries,
            completed,
            latency_s: if completed > 0 {
                latency_sum / completed as f64
            } else {
                f64::NAN
            },
            energy_j,
            pre_accuracy: pre_sum / qn,
            post_accuracy: post_sum / qn,
            boundary_radius_m: radius_sum / qn,
            explored: explored_sum / qn,
            tx_frames: stats.tx_protocol_frames,
            collisions: stats.collisions,
            status_counts,
            tokens_reissued: stats.tokens_reissued,
            query_retries: stats.query_retries,
            nodes_failed: (stats.nodes_crashed + stats.energy_deaths)
                .saturating_sub(stats.nodes_recovered),
            latency_p50_s: percentile(&latencies, 0.5),
            latency_p95_s: percentile(&latencies, 0.95),
            max_in_flight: max_in_flight(outcomes),
            per_query,
        }
    }

    /// Fraction of queries that ended with a degraded status: anything from
    /// partial-timeout through rejected. Merged and cache-hit queries are
    /// *answered* (via a host itinerary or a fresh cached result), so they
    /// do not count as degraded.
    pub fn degraded_rate(&self) -> f64 {
        let degraded: usize = self.status_counts[1..=5].iter().sum();
        degraded as f64 / self.queries.max(1) as f64
    }
}

/// Mean and sample standard deviation of a metric over runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stat {
    pub mean: f64,
    pub std: f64,
}

fn stat(values: impl Iterator<Item = f64>) -> Stat {
    let vals: Vec<f64> = values.filter(|v| v.is_finite()).collect();
    if vals.is_empty() {
        return Stat {
            mean: f64::NAN,
            std: f64::NAN,
        };
    }
    let n = vals.len() as f64;
    let mean = vals.iter().sum::<f64>() / n;
    let var = if vals.len() > 1 {
        vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    Stat {
        mean,
        std: var.sqrt(),
    }
}

/// Aggregated metrics over several seeded runs (the paper averages 20).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    pub runs: usize,
    pub latency_s: Stat,
    pub energy_j: Stat,
    pub pre_accuracy: Stat,
    pub post_accuracy: Stat,
    pub completion_rate: Stat,
    pub boundary_radius_m: Stat,
    pub explored: Stat,
    /// Fraction of queries per run that ended degraded (non-completed).
    pub degraded_rate: Stat,
    /// Watchdog token re-issues per run.
    pub tokens_reissued: Stat,
    /// Sink-side whole-query retries per run.
    pub query_retries: Stat,
    /// Nodes lost per run (crashes + energy deaths − recoveries).
    pub nodes_failed: Stat,
    /// Median query latency per run.
    pub latency_p50_s: Stat,
    /// 95th-percentile query latency per run.
    pub latency_p95_s: Stat,
    /// Peak concurrent in-flight queries per run.
    pub max_in_flight: Stat,
    /// Mean flow-attributed energy per query per run, in joules.
    pub per_query_energy_j: Stat,
}

impl Aggregate {
    pub fn from_runs(runs: &[RunMetrics]) -> Self {
        Aggregate {
            runs: runs.len(),
            latency_s: stat(runs.iter().map(|r| r.latency_s)),
            energy_j: stat(runs.iter().map(|r| r.energy_j)),
            pre_accuracy: stat(runs.iter().map(|r| r.pre_accuracy)),
            post_accuracy: stat(runs.iter().map(|r| r.post_accuracy)),
            completion_rate: stat(
                runs.iter()
                    .map(|r| r.completed as f64 / r.queries.max(1) as f64),
            ),
            boundary_radius_m: stat(runs.iter().map(|r| r.boundary_radius_m)),
            explored: stat(runs.iter().map(|r| r.explored)),
            degraded_rate: stat(runs.iter().map(|r| r.degraded_rate())),
            tokens_reissued: stat(runs.iter().map(|r| r.tokens_reissued as f64)),
            query_retries: stat(runs.iter().map(|r| r.query_retries as f64)),
            nodes_failed: stat(runs.iter().map(|r| r.nodes_failed as f64)),
            latency_p50_s: stat(runs.iter().map(|r| r.latency_p50_s)),
            latency_p95_s: stat(runs.iter().map(|r| r.latency_p95_s)),
            max_in_flight: stat(runs.iter().map(|r| r.max_in_flight as f64)),
            per_query_energy_j: stat(runs.iter().map(|r| {
                r.per_query.iter().map(|q| q.energy_j).sum::<f64>() / r.queries.max(1) as f64
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm(latency: f64, energy: f64) -> RunMetrics {
        RunMetrics {
            queries: 10,
            completed: 9,
            latency_s: latency,
            energy_j: energy,
            pre_accuracy: 0.9,
            post_accuracy: 0.95,
            boundary_radius_m: 25.0,
            explored: 42.0,
            tx_frames: 100,
            collisions: 5,
            status_counts: [9, 1, 0, 0, 0, 0, 0, 0],
            tokens_reissued: 0,
            query_retries: 0,
            nodes_failed: 0,
            latency_p50_s: latency,
            latency_p95_s: latency,
            max_in_flight: 1,
            per_query: Vec::new(),
        }
    }

    #[test]
    fn degraded_rate_counts_non_completed() {
        let mut m = rm(1.0, 0.4);
        m.status_counts = [6, 2, 1, 1, 0, 0, 0, 0];
        assert!((m.degraded_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn degraded_rate_counts_rejected_but_not_merged_or_cached() {
        let mut m = rm(1.0, 0.4);
        // 5 completed, 2 rejected, 2 merged, 1 cache-hit: only the
        // rejections are degraded — merged/cached queries were answered.
        m.status_counts = [5, 0, 0, 0, 0, 2, 2, 1];
        assert!((m.degraded_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn status_index_covers_all_statuses() {
        use QueryStatus::*;
        let all = [
            Completed,
            PartialTimeout,
            TokenLost,
            SinkUnreachable,
            Pending,
            Rejected,
            Merged,
            CacheHit,
        ];
        let idx: Vec<usize> = all.iter().map(|&s| status_index(s)).collect();
        assert_eq!(idx, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn aggregate_means_and_std() {
        let agg = Aggregate::from_runs(&[rm(1.0, 0.4), rm(2.0, 0.6)]);
        assert_eq!(agg.runs, 2);
        assert!((agg.latency_s.mean - 1.5).abs() < 1e-12);
        assert!((agg.energy_j.mean - 0.5).abs() < 1e-12);
        // Sample std of {1, 2} = 0.7071…
        assert!((agg.latency_s.std - 0.707).abs() < 1e-3);
        assert!((agg.completion_rate.mean - 0.9).abs() < 1e-12);
        assert!((agg.degraded_rate.mean - 0.1).abs() < 1e-12);
        assert_eq!(agg.tokens_reissued.mean, 0.0);
    }

    #[test]
    fn nan_latencies_are_skipped() {
        let mut bad = rm(f64::NAN, 0.4);
        bad.completed = 0;
        let agg = Aggregate::from_runs(&[bad, rm(2.0, 0.6)]);
        assert!((agg.latency_s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_run_std_is_zero() {
        let agg = Aggregate::from_runs(&[rm(1.0, 0.4)]);
        assert_eq!(agg.latency_s.std, 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&vals, 0.5) - 2.5).abs() < 1e-12);
        assert!((percentile(&vals, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&vals, 1.0) - 4.0).abs() < 1e-12);
        assert!(percentile(&[], 0.5).is_nan());
        assert!((percentile(&[7.0], 0.95) - 7.0).abs() < 1e-12);
    }

    fn outcome(qid: u32, issued: f64, done: Option<f64>) -> diknn_core::QueryOutcome {
        diknn_core::QueryOutcome {
            qid,
            sink: diknn_sim::NodeId(0),
            q: diknn_geom::Point::ORIGIN,
            k: 5,
            issued_at: diknn_sim::SimTime::from_secs_f64(issued),
            completed_at: done.map(diknn_sim::SimTime::from_secs_f64),
            answer: vec![],
            boundary_radius: 10.0,
            final_radius: 10.0,
            routing_hops: 1,
            parts_expected: 1,
            parts_returned: 1,
            explored_nodes: 3,
            status: QueryStatus::Completed,
        }
    }

    #[test]
    fn max_in_flight_counts_overlap() {
        // q0 [1, 4), q1 [2, 3), q2 [3.5, 5): peak overlap is 2 (q0+q1).
        let outs = vec![
            outcome(0, 1.0, Some(4.0)),
            outcome(1, 2.0, Some(3.0)),
            outcome(2, 3.5, Some(5.0)),
        ];
        assert_eq!(max_in_flight(&outs), 2);
        // Back-to-back at the same instant does not overlap.
        let outs = vec![outcome(0, 1.0, Some(2.0)), outcome(1, 2.0, Some(3.0))];
        assert_eq!(max_in_flight(&outs), 1);
        // A never-completed query stays in flight.
        let outs = vec![outcome(0, 1.0, None), outcome(1, 2.0, Some(3.0))];
        assert_eq!(max_in_flight(&outs), 2);
        assert_eq!(max_in_flight(&[]), 0);
    }

    #[test]
    fn per_query_energy_aggregates_mean() {
        let mut a = rm(1.0, 0.4);
        a.queries = 2;
        a.per_query = vec![
            QueryRecord {
                qid: 0,
                status: QueryStatus::Completed,
                latency_s: 1.0,
                energy_j: 0.3,
                pre_accuracy: 1.0,
                post_accuracy: 1.0,
            },
            QueryRecord {
                qid: 1,
                status: QueryStatus::Completed,
                latency_s: 1.0,
                energy_j: 0.1,
                pre_accuracy: 1.0,
                post_accuracy: 1.0,
            },
        ];
        let agg = Aggregate::from_runs(&[a]);
        assert!((agg.per_query_energy_j.mean - 0.2).abs() < 1e-12);
    }
}
