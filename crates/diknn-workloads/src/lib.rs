//! Workloads and measurement for the DIKNN reproduction.
//!
//! Provides the pieces the paper's evaluation (§5) is made of:
//!
//! * [`ScenarioConfig`] — network scenarios (the §5.1 settings table, node
//!   degree sizing, clustered Figure-7 placements, Peer-tree
//!   infrastructure).
//! * [`WorkloadConfig`] / [`workload::generate`] — snapshot KNN query
//!   streams with exponential inter-arrival (mean 4 s).
//! * [`GroundTruth`] — exact pre-/post-accuracy oracle over the analytic
//!   mobility plans.
//! * [`RunMetrics`] / [`Aggregate`] — latency, energy, accuracy, completion
//!   rate, averaged over seeded runs.
//! * [`Experiment`] / [`ProtocolKind`] — the driver that runs any of the
//!   four protocols (DIKNN, KPT+KNNB, Peer-tree, Flood) over a scenario.
//! * [`fault_sweep`] — packaged fault-plan sweeps (node churn, bursty
//!   links) for the robustness experiments.
//! * [`admission`] — serving-layer experiments: DIKNN under sustained
//!   [`QueryLoad`] arrivals with sink-side admission control, query merging
//!   and result caching, summarised by [`ServingSummary`].
//! * [`ServiceRun`] — the resident service mode: one long-lived simulator
//!   advanced in epochs under streaming arrivals ([`RateSchedule`]) and
//!   continuous churn, with full snapshot/restore and rolling metrics.
//! * [`ParallelSweep`] — the sanctioned scoped-thread executor; seed
//!   sweeps run across cores with bit-identical aggregates (see
//!   [`parallel`] for the determinism argument).
//!
//! # Example
//!
//! ```
//! use diknn_workloads::{Experiment, ProtocolKind, ScenarioConfig, WorkloadConfig};
//! use diknn_core::DiknnConfig;
//!
//! let exp = Experiment::new(
//!     ProtocolKind::Diknn(DiknnConfig::default()),
//!     ScenarioConfig { nodes: 100, duration: 20.0, max_speed: 0.0,
//!                      ..ScenarioConfig::default() },
//!     WorkloadConfig { k: 5, last_at: 8.0, ..WorkloadConfig::default() },
//! );
//! let agg = exp.run(1, 42);
//! assert!(agg.post_accuracy.mean > 0.5);
//! ```
// Shared strict-lint header (checked by `cargo xtask lint`): the
// simulation stack must stay safe Rust, and determinism rules are enforced
// by clippy `disallowed-types`/`disallowed-methods` plus `cargo xtask lint`.
#![forbid(unsafe_code)]
#![deny(unused_must_use)]

pub mod admission;
pub mod fault_sweep;
pub mod invariants;
mod metrics;
mod oracle;
pub mod parallel;
mod runner;
mod scenario;
pub mod service;
pub mod workload;

pub use admission::{admission_experiment, ServingSummary};
pub use fault_sweep::FaultCell;
pub use invariants::{assert_clean, check, check_with, CheckOptions, Violation};
pub use metrics::{status_index, Aggregate, QueryRecord, RunMetrics, Stat};
pub use oracle::GroundTruth;
pub use parallel::{run_sharded, run_sharded_to_limit, ParallelSweep, ShardPool};
pub use runner::{run_protocol_once, run_protocol_once_faulted, Experiment, ProtocolKind};
pub use scenario::{HerdSetup, PlacementKind, ScenarioConfig};
pub use service::{ServiceConfig, ServiceMetrics, ServiceRun, SERVICE_SNAP_VERSION};
pub use workload::{epoch_arrivals, QueryLoad, RateSchedule, WorkloadConfig};
