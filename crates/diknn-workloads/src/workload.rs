//! Query workload generation: the paper issues snapshot KNN queries with
//! exponentially distributed inter-arrival times (mean 4 s) from random
//! sinks at random query points.

use crate::scenario::ScenarioConfig;
use diknn_core::QueryRequest;
use diknn_sim::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Requested neighbour count `k`.
    pub k: usize,
    /// Mean of the exponential inter-arrival time, in seconds (4 s).
    pub mean_interval: f64,
    /// First query time in seconds (leaves room for beacon warm-up /
    /// Peer-tree index build).
    pub first_at: f64,
    /// No queries after this time (queries need time to complete inside
    /// the run).
    pub last_at: f64,
    /// Query points keep this margin from the field edge.
    pub edge_margin: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            k: 40,
            mean_interval: 4.0,
            first_at: 2.0,
            last_at: 80.0,
            edge_margin: 15.0,
        }
    }
}

/// Generate the request sequence for one run.
///
/// Sinks are uniform over the data nodes; query points uniform inside the
/// field margin; inter-arrival times `Exp(1/mean)`.
pub fn generate(scenario: &ScenarioConfig, cfg: &WorkloadConfig, seed: u64) -> Vec<QueryRequest> {
    assert!(cfg.k >= 1, "k must be positive");
    assert!(cfg.mean_interval > 0.0);
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x517C_C1B7).wrapping_add(3));
    let mut out = Vec::new();
    let mut t = cfg.first_at;
    while t <= cfg.last_at.min(scenario.duration) {
        out.push(QueryRequest {
            at: t,
            sink: NodeId(rng.gen_range(0..scenario.nodes) as u32),
            q: scenario.random_query_point(&mut rng, cfg.edge_margin),
            k: cfg.k,
        });
        // Inverse-CDF exponential sample.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -cfg.mean_interval * u.ln();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requests_in_window() {
        let sc = ScenarioConfig::default();
        let wl = WorkloadConfig::default();
        let reqs = generate(&sc, &wl, 7);
        assert!(!reqs.is_empty());
        for r in &reqs {
            assert!(r.at >= wl.first_at && r.at <= wl.last_at);
            assert!(r.sink.index() < sc.nodes);
            assert_eq!(r.k, 40);
        }
        // Times strictly increasing.
        for w in reqs.windows(2) {
            assert!(w[0].at < w[1].at);
        }
    }

    #[test]
    fn mean_interval_roughly_respected() {
        let sc = ScenarioConfig {
            duration: 100_000.0,
            ..ScenarioConfig::default()
        };
        let wl = WorkloadConfig {
            last_at: 99_000.0,
            ..WorkloadConfig::default()
        };
        let reqs = generate(&sc, &wl, 11);
        let n = reqs.len() as f64;
        let span = reqs.last().unwrap().at - reqs[0].at;
        let mean = span / (n - 1.0);
        assert!(
            (mean - 4.0).abs() < 0.4,
            "empirical mean interval {mean} not ≈ 4"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let sc = ScenarioConfig::default();
        let wl = WorkloadConfig::default();
        assert_eq!(generate(&sc, &wl, 5), generate(&sc, &wl, 5));
        assert_ne!(generate(&sc, &wl, 5), generate(&sc, &wl, 6));
    }
}
