//! Query workload generation: the paper issues snapshot KNN queries with
//! exponentially distributed inter-arrival times (mean 4 s) from random
//! sinks at random query points.

use crate::scenario::ScenarioConfig;
use diknn_core::QueryRequest;
use diknn_sim::{ConfigError, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Requested neighbour count `k`.
    pub k: usize,
    /// Mean of the exponential inter-arrival time, in seconds (4 s).
    pub mean_interval: f64,
    /// First query time in seconds (leaves room for beacon warm-up /
    /// Peer-tree index build).
    pub first_at: f64,
    /// No queries after this time (queries need time to complete inside
    /// the run).
    pub last_at: f64,
    /// Query points keep this margin from the field edge.
    pub edge_margin: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            k: 40,
            mean_interval: 4.0,
            first_at: 2.0,
            last_at: 80.0,
            edge_margin: 15.0,
        }
    }
}

/// Generate the request sequence for one run.
///
/// Sinks are uniform over the data nodes; query points uniform inside the
/// field margin; inter-arrival times `Exp(1/mean)`.
pub fn generate(scenario: &ScenarioConfig, cfg: &WorkloadConfig, seed: u64) -> Vec<QueryRequest> {
    assert!(cfg.k >= 1, "k must be positive");
    assert!(cfg.mean_interval > 0.0);
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x517C_C1B7).wrapping_add(3));
    let mut out = Vec::new();
    let mut t = cfg.first_at;
    while t <= cfg.last_at.min(scenario.duration) {
        out.push(QueryRequest {
            at: t,
            sink: NodeId(rng.gen_range(0..scenario.nodes) as u32),
            q: scenario.random_query_point(&mut rng, cfg.edge_margin),
            k: cfg.k,
        });
        // Inverse-CDF exponential sample.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -cfg.mean_interval * u.ln();
    }
    out
}

/// A sustained concurrent query load: the deterministic Poisson-like
/// arrival process of the multi-query engine.
///
/// Same sampler as [`generate`] (so a `QueryLoad` run is bit-reproducible
/// per seed) but parameterised by arrival *rate* λ in queries/sec instead
/// of a mean interval, with an optional total-query cap. Rates well above
/// `1 / typical_query_latency` put many queries in flight at once, which
/// is the regime the per-query metrics, watchdogs and the cross-query
/// custody invariant exist for.
#[derive(Debug, Clone, Copy)]
pub struct QueryLoad {
    /// Mean arrival rate λ, in queries per second.
    pub rate_qps: f64,
    /// Requested neighbour count `k`.
    pub k: usize,
    /// First arrival time in seconds.
    pub first_at: f64,
    /// No arrivals after this time.
    pub last_at: f64,
    /// Query points keep this margin from the field edge.
    pub edge_margin: f64,
    /// Optional cap on the total number of queries issued.
    pub max_queries: Option<usize>,
}

impl Default for QueryLoad {
    fn default() -> Self {
        QueryLoad {
            rate_qps: 2.0,
            k: 10,
            first_at: 2.0,
            last_at: 80.0,
            edge_margin: 15.0,
            max_queries: None,
        }
    }
}

impl QueryLoad {
    /// Reject nonsensical load knobs with a typed error (shared
    /// [`ConfigError`] vocabulary): the arrival rate must be positive —
    /// zero, negative and NaN rates all describe a workload that cannot
    /// arrive.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.rate_qps <= 0.0 || self.rate_qps.is_nan() {
            return Err(ConfigError::NonPositiveQueryRate(self.rate_qps));
        }
        assert!(self.rate_qps.is_finite(), "arrival rate must be finite");
        assert!(self.k >= 1, "k must be positive");
        Ok(())
    }

    /// The equivalent [`WorkloadConfig`] (mean interval = 1/λ).
    pub fn workload(&self) -> WorkloadConfig {
        if let Err(e) = self.validate() {
            panic!("query load: {e}");
        }
        WorkloadConfig {
            k: self.k,
            mean_interval: 1.0 / self.rate_qps,
            first_at: self.first_at,
            last_at: self.last_at,
            edge_margin: self.edge_margin,
        }
    }

    /// Generate the arrival sequence for one run: [`generate`] through the
    /// equivalent workload, truncated to `max_queries` if set.
    pub fn generate(&self, scenario: &ScenarioConfig, seed: u64) -> Vec<QueryRequest> {
        let mut reqs = generate(scenario, &self.workload(), seed);
        if let Some(cap) = self.max_queries {
            reqs.truncate(cap);
        }
        reqs
    }
}

/// A piecewise-constant arrival-rate schedule for the resident service
/// mode: `(from_s, qps)` steps, each in force from its start time until the
/// next step (the last step holds forever). Lets soak scenarios model rate
/// ramps and overload steps without touching the arrival sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct RateSchedule {
    /// `(from_s, qps)` steps, strictly increasing in `from_s`.
    steps: Vec<(f64, f64)>,
}

impl RateSchedule {
    /// A schedule holding one rate forever.
    pub fn constant(qps: f64) -> Self {
        Self::new(vec![(0.0, qps)])
    }

    /// A schedule from explicit `(from_s, qps)` steps. Steps must be
    /// strictly increasing in time, start at 0, and carry finite
    /// non-negative rates (0 = arrivals paused).
    pub fn new(steps: Vec<(f64, f64)>) -> Self {
        assert!(!steps.is_empty(), "rate schedule needs at least one step");
        assert_eq!(steps[0].0, 0.0, "rate schedule must start at t=0");
        for w in steps.windows(2) {
            assert!(w[0].0 < w[1].0, "rate steps must be strictly increasing");
        }
        for &(from, qps) in &steps {
            assert!(from.is_finite() && qps.is_finite(), "non-finite rate step");
            assert!(qps >= 0.0, "negative arrival rate");
        }
        RateSchedule { steps }
    }

    /// The rate in force at time `t` (seconds).
    pub fn rate_at(&self, t: f64) -> f64 {
        self.steps
            .iter()
            .rev()
            .find(|&&(from, _)| t >= from)
            .map(|&(_, qps)| qps)
            .unwrap_or(self.steps[0].1)
    }

    /// The steps, for diagnostics.
    pub fn steps(&self) -> &[(f64, f64)] {
        &self.steps
    }
}

/// Arrivals for one service-mode epoch `[start, end)`.
///
/// Derived statelessly from `(seed, epoch)`: the exponential clock restarts
/// at each epoch boundary with a fresh per-epoch RNG, so a run restored
/// from a snapshot taken at any epoch boundary regenerates the identical
/// arrival stream for every later epoch — the property the service mode's
/// restore-equivalence law rests on. The rate is sampled from `schedule`
/// at each arrival instant, so a step mid-epoch takes effect mid-epoch.
#[allow(clippy::too_many_arguments)]
pub fn epoch_arrivals(
    scenario: &ScenarioConfig,
    schedule: &RateSchedule,
    k: usize,
    edge_margin: f64,
    seed: u64,
    epoch: u64,
    start: f64,
    end: f64,
) -> Vec<QueryRequest> {
    assert!(k >= 1, "k must be positive");
    assert!(start < end, "empty epoch window");
    let mix = seed
        .wrapping_mul(0x517C_C1B7)
        .wrapping_add(3)
        .wrapping_add(epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut rng = SmallRng::seed_from_u64(mix);
    let mut out = Vec::new();
    let mut t = start;
    loop {
        let qps = schedule.rate_at(t);
        if qps <= 0.0 {
            // Paused: skip to the next step inside the window, if any.
            match schedule
                .steps
                .iter()
                .find(|&&(from, rate)| from > t && rate > 0.0)
            {
                Some(&(from, _)) if from < end => t = from,
                _ => break,
            }
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / qps;
        if t >= end {
            break;
        }
        out.push(QueryRequest {
            at: t,
            sink: NodeId(rng.gen_range(0..scenario.nodes) as u32),
            q: scenario.random_query_point(&mut rng, edge_margin),
            k,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requests_in_window() {
        let sc = ScenarioConfig::default();
        let wl = WorkloadConfig::default();
        let reqs = generate(&sc, &wl, 7);
        assert!(!reqs.is_empty());
        for r in &reqs {
            assert!(r.at >= wl.first_at && r.at <= wl.last_at);
            assert!(r.sink.index() < sc.nodes);
            assert_eq!(r.k, 40);
        }
        // Times strictly increasing.
        for w in reqs.windows(2) {
            assert!(w[0].at < w[1].at);
        }
    }

    #[test]
    fn mean_interval_roughly_respected() {
        let sc = ScenarioConfig {
            duration: 100_000.0,
            ..ScenarioConfig::default()
        };
        let wl = WorkloadConfig {
            last_at: 99_000.0,
            ..WorkloadConfig::default()
        };
        let reqs = generate(&sc, &wl, 11);
        let n = reqs.len() as f64;
        let span = reqs.last().unwrap().at - reqs[0].at;
        let mean = span / (n - 1.0);
        assert!(
            (mean - 4.0).abs() < 0.4,
            "empirical mean interval {mean} not ≈ 4"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let sc = ScenarioConfig::default();
        let wl = WorkloadConfig::default();
        assert_eq!(generate(&sc, &wl, 5), generate(&sc, &wl, 5));
        assert_ne!(generate(&sc, &wl, 5), generate(&sc, &wl, 6));
    }

    #[test]
    fn query_load_rejects_non_positive_rates() {
        for rate in [0.0, -2.5, f64::NAN] {
            let load = QueryLoad {
                rate_qps: rate,
                ..QueryLoad::default()
            };
            assert!(
                matches!(load.validate(), Err(ConfigError::NonPositiveQueryRate(_))),
                "rate {rate} must be rejected"
            );
        }
        assert_eq!(QueryLoad::default().validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "query load")]
    fn query_load_workload_surfaces_typed_error() {
        QueryLoad {
            rate_qps: -1.0,
            ..QueryLoad::default()
        }
        .workload();
    }

    #[test]
    fn query_load_matches_equivalent_workload_and_caps() {
        let sc = ScenarioConfig::default();
        let load = QueryLoad {
            rate_qps: 0.25,
            ..QueryLoad::default()
        };
        let via_load = load.generate(&sc, 5);
        let via_wl = generate(&sc, &load.workload(), 5);
        assert_eq!(via_load, via_wl);
        let capped = QueryLoad {
            max_queries: Some(3),
            ..load
        }
        .generate(&sc, 5);
        assert_eq!(capped.len(), 3.min(via_load.len()));
        assert_eq!(&via_load[..capped.len()], &capped[..]);
    }

    #[test]
    fn rate_schedule_steps_take_effect() {
        let rs = RateSchedule::new(vec![(0.0, 2.0), (10.0, 8.0), (20.0, 0.0)]);
        assert_eq!(rs.rate_at(0.0), 2.0);
        assert_eq!(rs.rate_at(9.99), 2.0);
        assert_eq!(rs.rate_at(10.0), 8.0);
        assert_eq!(rs.rate_at(25.0), 0.0);
        assert_eq!(RateSchedule::constant(3.0).rate_at(1e6), 3.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rate_schedule_rejects_unordered_steps() {
        RateSchedule::new(vec![(0.0, 1.0), (5.0, 2.0), (5.0, 3.0)]);
    }

    #[test]
    fn epoch_arrivals_are_stateless_per_epoch() {
        let sc = ScenarioConfig::default();
        let rs = RateSchedule::constant(4.0);
        let a = epoch_arrivals(&sc, &rs, 10, 15.0, 7, 3, 15.0, 20.0);
        let b = epoch_arrivals(&sc, &rs, 10, 15.0, 7, 3, 15.0, 20.0);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for r in &a {
            assert!(r.at >= 15.0 && r.at < 20.0);
            assert!(r.sink.index() < sc.nodes);
        }
        // A different epoch index draws a different stream even over the
        // same window (the per-epoch derivation, not the window, keys it).
        let c = epoch_arrivals(&sc, &rs, 10, 15.0, 7, 4, 15.0, 20.0);
        assert_ne!(a, c);
    }

    #[test]
    fn epoch_arrivals_respect_rate_pause() {
        let sc = ScenarioConfig::default();
        let rs = RateSchedule::new(vec![(0.0, 0.0), (4.0, 50.0)]);
        let a = epoch_arrivals(&sc, &rs, 5, 15.0, 1, 0, 0.0, 6.0);
        assert!(!a.is_empty());
        for r in &a {
            assert!(r.at >= 4.0, "arrival {} during the paused stretch", r.at);
        }
        // Fully paused window: no arrivals at all.
        let quiet = RateSchedule::new(vec![(0.0, 0.0)]);
        assert!(epoch_arrivals(&sc, &quiet, 5, 15.0, 1, 0, 0.0, 6.0).is_empty());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Truncation stability: capping a load is a pure prefix
            /// operation — the capped stream equals the first `cap` entries
            /// of the uncapped stream (same times, sinks, points, k), and
            /// arrivals stay strictly monotone. Load sweeps rely on this to
            /// compare capped and uncapped runs of the same seed.
            #[test]
            fn query_load_truncation_is_prefix_stable(
                rate in 0.05..30.0f64,
                cap in 0usize..40,
                seed in 0u64..10_000,
            ) {
                let sc = ScenarioConfig::default();
                let load = QueryLoad {
                    rate_qps: rate,
                    ..QueryLoad::default()
                };
                let full = load.generate(&sc, seed);
                for w in full.windows(2) {
                    prop_assert!(
                        w[0].at < w[1].at,
                        "arrivals must be strictly monotone: {} then {}",
                        w[0].at,
                        w[1].at
                    );
                }
                let capped = QueryLoad {
                    max_queries: Some(cap),
                    ..load
                }
                .generate(&sc, seed);
                prop_assert_eq!(capped.len(), cap.min(full.len()));
                prop_assert_eq!(&full[..capped.len()], &capped[..]);
            }
        }
    }
}
