//! Trace-driven protocol invariant checker.
//!
//! End-state metrics cannot tell a correct execution from a lucky one; the
//! checker replays a flight-recorder trace (`diknn_sim::EventTrace`) against
//! the run's final [`QueryOutcome`]s and verifies the protocol *laws* every
//! legal DIKNN execution must obey:
//!
//! 1. **token-epoch** — token custody forms a chain per
//!    `(query, attempt, sector, epoch)`: each handoff is emitted by the
//!    previous recipient (or the previous sender, on a send-failed retry),
//!    re-issue epochs strictly increase, and an epoch `> 0` only enters
//!    circulation through a `TokenReissued` event at the watchdog holder.
//!    Together: at most one live token per (query, epoch).
//! 2. **dead-silence** — a crashed (or energy-dead, un-recovered) node never
//!    appears as a transmission source while down.
//! 3. **boundary-containment** — every node in a final answer was heard as
//!    a `CandidateHeard` for that query, at a distance inside the KNNB
//!    boundary in force at collection time (plus a small mobility slack —
//!    a responder checks containment when the probe arrives but reports its
//!    position up to a contention window later).
//! 4. **itinerary-order** — within one `(query, attempt, sector, epoch)`
//!    traversal, handoff frontiers (arc-length progress) never move
//!    backwards: sectors are walked in itinerary order.
//! 5. **energy-monotone** — each node's cumulative spent energy never
//!    decreases (recorded under energy budgets).
//! 6. **terminal-status** — every query ends in exactly one terminal
//!    [`QueryStatus`] (never `Pending` after the run is accounted), at most
//!    one `QueryDone` is emitted per query, and an emitted `QueryDone`
//!    agrees with the final outcome.
//! 7. **cross-query-custody** — token custody never transfers between
//!    distinct query ids: every epoch-0 chain of a `(query, attempt)` is
//!    anchored at that query's own home node (the node that emitted its
//!    `BoundaryEstimated`), and epoch `> 0` chains at their `TokenReissued`
//!    holder (law 1). Since chain state is keyed by query id, the only way
//!    custody could leak across concurrent queries is a chain starting at a
//!    node that never legitimately acquired *this* query's token — which
//!    this anchor check rules out.
//!
//! 8. **admission-soundness** — the serving layer's degradation path is as
//!    lawful as the happy path: no query is both (terminally) rejected and
//!    executed (`QueryAdmitted`/`QueryIssued`); a rejected query's answer is
//!    empty; a merged query has exactly one `QueryMerged` event, never
//!    executes its own itinerary, and its answer contains only nodes the
//!    *host* query heard; a cache hit has exactly one `CacheServed` event
//!    whose recorded age never exceeds the recorded TTL, and its answer
//!    contains only nodes its source query heard. Vacuous for runs without
//!    serving events.
//!
//! 9. **churn-silence** — a node that left the network (churn `Leave`, the
//!    service mode's lifecycle event) never appears as a transmission
//!    source until its `Rejoin`: the dead-silence law for voluntary
//!    departures. A `Rejoin`/`Recover` clears both down states, mirroring
//!    the engine's single liveness flag.
//!
//! A trace whose ring buffer overflowed (`dropped_events() > 0`) is itself
//! reported (**trace-complete**): incomplete evidence must not certify a
//! run.
//!
//! Protocols that emit no protocol-level events (the baselines) are checked
//! only against the engine-level laws (2, 5) and outcome termination (6) —
//! the query-structure laws are vacuous without `QueryIssued` events.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use diknn_core::{QueryOutcome, QueryStatus};
use diknn_sim::{EventTrace, NodeId, ProtoEvent, SimTime, TraceKind};

/// One invariant violation found in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which law was broken (stable kebab-case name, see module docs).
    pub invariant: &'static str,
    /// Trace time of the offending event (`SimTime::ZERO` for post-run
    /// outcome checks).
    pub at: SimTime,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at {}: {}", self.invariant, self.at, self.detail)
    }
}

/// Tunables for [`check_with`].
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// Slack (metres) allowed on boundary containment: a responder is
    /// vetted against the boundary when the probe arrives but reports its
    /// position up to a full contention window later, so a mobile node can
    /// legitimately drift `max_speed × window` (both endpoints move) past
    /// the radius before its reply is recorded.
    pub boundary_slack_m: f64,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            // ~2 × 20 m/s × 0.15 s, the worst drift the paper's settings
            // (max speed 20 m/s, 0.144 s contention window) can produce.
            boundary_slack_m: 6.0,
        }
    }
}

/// Custody-chain state for one `(qid, attempt, sector, epoch)` traversal.
struct Chain {
    last_from: NodeId,
    last_to: NodeId,
    frontier: f64,
}

/// Replay `trace` against the final `outcomes` with default options.
pub fn check(trace: &EventTrace, outcomes: &[QueryOutcome]) -> Vec<Violation> {
    check_with(trace, outcomes, CheckOptions::default())
}

/// Replay `trace` against the final `outcomes`; returns every violation
/// found (empty = the run was lawful).
pub fn check_with(
    trace: &EventTrace,
    outcomes: &[QueryOutcome],
    opts: CheckOptions,
) -> Vec<Violation> {
    let mut v: Vec<Violation> = Vec::new();
    if trace.dropped_events() > 0 {
        v.push(Violation {
            invariant: "trace-complete",
            at: SimTime::ZERO,
            detail: format!(
                "ring buffer evicted {} events; the trace cannot certify this run",
                trace.dropped_events()
            ),
        });
    }

    // Replay state.
    let mut dead: BTreeSet<NodeId> = BTreeSet::new();
    // Nodes currently churned out (Leave without a matching Rejoin).
    let mut churned: BTreeSet<NodeId> = BTreeSet::new();
    let mut energy: BTreeMap<NodeId, f64> = BTreeMap::new();
    let mut issued: BTreeSet<u32> = BTreeSet::new();
    // qid → responder → best (dist − radius) margin over all hearings.
    let mut heard: BTreeMap<u32, BTreeMap<NodeId, f64>> = BTreeMap::new();
    // (qid, attempt) → home node (emitter of BoundaryEstimated); anchors
    // epoch-0 custody for the cross-query law.
    let mut homes: BTreeMap<(u32, u8), NodeId> = BTreeMap::new();
    // (qid, attempt, sector) → last re-issued epoch.
    let mut reissued: BTreeMap<(u32, u8, u8), u32> = BTreeMap::new();
    // (qid, attempt, sector, epoch) → node that re-issued it.
    let mut reissuer: BTreeMap<(u32, u8, u8, u32), NodeId> = BTreeMap::new();
    let mut chains: BTreeMap<(u32, u8, u8, u32), Chain> = BTreeMap::new();
    // qid → emitted QueryDone records.
    let mut dones: BTreeMap<u32, Vec<(&'static str, Vec<NodeId>)>> = BTreeMap::new();
    // Serving layer (admission-soundness). "Executed" below means the query
    // ran its own itinerary: it was admitted and/or issued.
    let mut admitted: BTreeSet<u32> = BTreeSet::new();
    let mut rejected_terminal: BTreeSet<u32> = BTreeSet::new();
    // member qid → host qids from QueryMerged events (must end up singleton).
    let mut merged_ev: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    // qid → (source qid, CacheServed count).
    let mut cached_ev: BTreeMap<u32, (u32, u32)> = BTreeMap::new();

    for e in trace.events() {
        match &e.kind {
            TraceKind::Crash | TraceKind::EnergyDeath => {
                dead.insert(e.node);
            }
            TraceKind::Leave => {
                churned.insert(e.node);
            }
            // Recover and Rejoin both flip the engine's single liveness
            // flag back on, whichever mechanism took the node down.
            TraceKind::Recover | TraceKind::Rejoin => {
                dead.remove(&e.node);
                churned.remove(&e.node);
            }
            TraceKind::TxStart { .. } => {
                if dead.contains(&e.node) {
                    v.push(Violation {
                        invariant: "dead-silence",
                        at: e.time,
                        detail: format!("{} transmitted while down", e.node),
                    });
                }
                if churned.contains(&e.node) {
                    v.push(Violation {
                        invariant: "churn-silence",
                        at: e.time,
                        detail: format!("{} transmitted while churned out", e.node),
                    });
                }
            }
            TraceKind::Energy { spent_j } => {
                let prev = energy.entry(e.node).or_insert(0.0);
                if *spent_j < *prev - 1e-12 {
                    v.push(Violation {
                        invariant: "energy-monotone",
                        at: e.time,
                        detail: format!(
                            "{} spent energy went backwards: {prev:.9} J → {spent_j:.9} J",
                            e.node
                        ),
                    });
                }
                *prev = spent_j.max(*prev);
            }
            TraceKind::Proto(p) => match p {
                ProtoEvent::QueryIssued { qid, .. } => {
                    if rejected_terminal.contains(qid) {
                        v.push(Violation {
                            invariant: "admission-soundness",
                            at: e.time,
                            detail: format!("q{qid} issued after terminal rejection"),
                        });
                    }
                    if merged_ev.contains_key(qid) || cached_ev.contains_key(qid) {
                        v.push(Violation {
                            invariant: "admission-soundness",
                            at: e.time,
                            detail: format!(
                                "q{qid} launched its own itinerary after being \
                                 served by merge/cache"
                            ),
                        });
                    }
                    issued.insert(*qid);
                }
                ProtoEvent::TokenReissued {
                    qid,
                    attempt,
                    sector,
                    epoch,
                } => {
                    let k = (*qid, *attempt, *sector);
                    if let Some(&last) = reissued.get(&k) {
                        if *epoch <= last {
                            v.push(Violation {
                                invariant: "token-epoch",
                                at: e.time,
                                detail: format!(
                                    "q{qid} attempt {attempt} sector {sector}: re-issue \
                                     epoch {epoch} does not exceed previous {last}"
                                ),
                            });
                        }
                    }
                    reissued.insert(k, *epoch);
                    reissuer.insert((*qid, *attempt, *sector, *epoch), e.node);
                }
                ProtoEvent::TokenHandoff {
                    qid,
                    attempt,
                    sector,
                    epoch,
                    to,
                    frontier,
                } => {
                    let k = (*qid, *attempt, *sector, *epoch);
                    match chains.get_mut(&k) {
                        None => {
                            if *epoch == 0 {
                                match homes.get(&(*qid, *attempt)) {
                                    None => v.push(Violation {
                                        invariant: "cross-query-custody",
                                        at: e.time,
                                        detail: format!(
                                            "q{qid} attempt {attempt} sector {sector}: epoch 0 \
                                             token handed off by {} with no BoundaryEstimated \
                                             anchor for this query",
                                            e.node
                                        ),
                                    }),
                                    Some(&h) if h != e.node => v.push(Violation {
                                        invariant: "cross-query-custody",
                                        at: e.time,
                                        detail: format!(
                                            "q{qid} attempt {attempt} sector {sector}: epoch 0 \
                                             custody starts at {} but this query's home is {h} \
                                             — token custody crossed query ids",
                                            e.node
                                        ),
                                    }),
                                    Some(_) => {}
                                }
                            }
                            if *epoch > 0 {
                                match reissuer.get(&k) {
                                    None => v.push(Violation {
                                        invariant: "token-epoch",
                                        at: e.time,
                                        detail: format!(
                                            "q{qid} attempt {attempt} sector {sector}: epoch \
                                             {epoch} circulates without a TokenReissued event"
                                        ),
                                    }),
                                    Some(&n) if n != e.node => v.push(Violation {
                                        invariant: "token-epoch",
                                        at: e.time,
                                        detail: format!(
                                            "q{qid} attempt {attempt} sector {sector}: epoch \
                                             {epoch} was re-issued at {n} but first handed \
                                             off by {}",
                                            e.node
                                        ),
                                    }),
                                    Some(_) => {}
                                }
                            }
                            chains.insert(
                                k,
                                Chain {
                                    last_from: e.node,
                                    last_to: *to,
                                    frontier: *frontier,
                                },
                            );
                        }
                        Some(c) => {
                            // The emitter must be the previous recipient, or
                            // the previous sender retrying after a send
                            // failure — anyone else means two live copies.
                            if e.node != c.last_to && e.node != c.last_from {
                                v.push(Violation {
                                    invariant: "token-epoch",
                                    at: e.time,
                                    detail: format!(
                                        "q{qid} attempt {attempt} sector {sector} epoch \
                                         {epoch}: handoff by {} but custody was with \
                                         {} (handed to {})",
                                        e.node, c.last_from, c.last_to
                                    ),
                                });
                            }
                            if *frontier < c.frontier - 1e-9 {
                                v.push(Violation {
                                    invariant: "itinerary-order",
                                    at: e.time,
                                    detail: format!(
                                        "q{qid} attempt {attempt} sector {sector} epoch \
                                         {epoch}: frontier moved backwards \
                                         {:.3} → {:.3}",
                                        c.frontier, frontier
                                    ),
                                });
                            }
                            c.last_from = e.node;
                            c.last_to = *to;
                            c.frontier = frontier.max(c.frontier);
                        }
                    }
                }
                ProtoEvent::CandidateHeard {
                    qid,
                    responder,
                    dist,
                    radius,
                    ..
                } => {
                    let margin = dist - radius;
                    let entry = heard
                        .entry(*qid)
                        .or_default()
                        .entry(*responder)
                        .or_insert(f64::INFINITY);
                    *entry = entry.min(margin);
                }
                ProtoEvent::QueryDone {
                    qid,
                    status,
                    answer,
                } => {
                    dones
                        .entry(*qid)
                        .or_default()
                        .push((status, answer.clone()));
                }
                ProtoEvent::BoundaryEstimated { qid, attempt, .. } => {
                    homes.entry((*qid, *attempt)).or_insert(e.node);
                }
                ProtoEvent::QueryAdmitted { qid, .. } => {
                    if rejected_terminal.contains(qid) {
                        v.push(Violation {
                            invariant: "admission-soundness",
                            at: e.time,
                            detail: format!("q{qid} admitted after terminal rejection"),
                        });
                    }
                    admitted.insert(*qid);
                }
                ProtoEvent::QueryRejected { qid, terminal, .. } => {
                    if *terminal {
                        if admitted.contains(qid) || issued.contains(qid) {
                            v.push(Violation {
                                invariant: "admission-soundness",
                                at: e.time,
                                detail: format!("q{qid} terminally rejected after executing"),
                            });
                        }
                        rejected_terminal.insert(*qid);
                    }
                }
                ProtoEvent::QueryMerged { qid, host } => {
                    if admitted.contains(qid) || issued.contains(qid) {
                        v.push(Violation {
                            invariant: "admission-soundness",
                            at: e.time,
                            detail: format!(
                                "q{qid} merged into q{host} after launching its \
                                 own itinerary"
                            ),
                        });
                    }
                    merged_ev.entry(*qid).or_default().push(*host);
                }
                ProtoEvent::CacheServed {
                    qid,
                    src,
                    age_s,
                    ttl_s,
                } => {
                    if age_s > ttl_s {
                        v.push(Violation {
                            invariant: "admission-soundness",
                            at: e.time,
                            detail: format!(
                                "q{qid} served a cached answer {age_s:.3} s old, \
                                 past its {ttl_s:.3} s TTL"
                            ),
                        });
                    }
                    if admitted.contains(qid) || issued.contains(qid) {
                        v.push(Violation {
                            invariant: "admission-soundness",
                            at: e.time,
                            detail: format!(
                                "q{qid} served from cache after launching its \
                                 own itinerary"
                            ),
                        });
                    }
                    let entry = cached_ev.entry(*qid).or_insert((*src, 0));
                    entry.1 += 1;
                }
                ProtoEvent::BoundaryExtended { .. }
                | ProtoEvent::SectorFinished { .. }
                | ProtoEvent::SinkMerge { .. } => {}
            },
            TraceKind::RxDeliver { .. }
            | TraceKind::Collision { .. }
            | TraceKind::Drop { .. }
            | TraceKind::TimerFired { .. }
            | TraceKind::TimerSuppressed { .. } => {}
        }
    }

    // Post-run outcome checks.
    for o in outcomes {
        if o.status == QueryStatus::Pending {
            v.push(Violation {
                invariant: "terminal-status",
                at: SimTime::ZERO,
                detail: format!("q{} never reached a terminal status", o.qid),
            });
        }
        // Law 8: a serving-layer status must agree with the serving events,
        // and a served answer must trace back to candidates the *executing*
        // query (merge host / cache source) heard. Runs before the `issued`
        // gate below — rejected/merged/cached queries never launch their own
        // itinerary, so they are exactly the outcomes that gate skips.
        match o.status {
            QueryStatus::Rejected => {
                if issued.contains(&o.qid) || admitted.contains(&o.qid) {
                    v.push(Violation {
                        invariant: "admission-soundness",
                        at: SimTime::ZERO,
                        detail: format!("q{} ended rejected but was executed", o.qid),
                    });
                }
                if !o.answer.is_empty() {
                    v.push(Violation {
                        invariant: "admission-soundness",
                        at: SimTime::ZERO,
                        detail: format!(
                            "q{} rejected with a non-empty answer ({} ids)",
                            o.qid,
                            o.answer.len()
                        ),
                    });
                }
            }
            QueryStatus::Merged => match merged_ev.get(&o.qid) {
                Some(hosts) if hosts.len() == 1 => {
                    let host = hosts[0];
                    let empty = BTreeMap::new();
                    let heard_h = heard.get(&host).unwrap_or(&empty);
                    for id in &o.answer {
                        if !heard_h.contains_key(id) {
                            v.push(Violation {
                                invariant: "admission-soundness",
                                at: SimTime::ZERO,
                                detail: format!(
                                    "q{}: merged answer contains {id}, never heard \
                                     by host q{host}",
                                    o.qid
                                ),
                            });
                        }
                    }
                }
                Some(hosts) => v.push(Violation {
                    invariant: "admission-soundness",
                    at: SimTime::ZERO,
                    detail: format!(
                        "q{} has {} QueryMerged events (want exactly one)",
                        o.qid,
                        hosts.len()
                    ),
                }),
                None => v.push(Violation {
                    invariant: "admission-soundness",
                    at: SimTime::ZERO,
                    detail: format!("q{} ended merged without a QueryMerged event", o.qid),
                }),
            },
            QueryStatus::CacheHit => match cached_ev.get(&o.qid) {
                Some(&(src, 1)) => {
                    let empty = BTreeMap::new();
                    let heard_s = heard.get(&src).unwrap_or(&empty);
                    for id in &o.answer {
                        if !heard_s.contains_key(id) {
                            v.push(Violation {
                                invariant: "admission-soundness",
                                at: SimTime::ZERO,
                                detail: format!(
                                    "q{}: cached answer contains {id}, never heard \
                                     by source q{src}",
                                    o.qid
                                ),
                            });
                        }
                    }
                }
                Some(&(_, n)) => v.push(Violation {
                    invariant: "admission-soundness",
                    at: SimTime::ZERO,
                    detail: format!("q{} has {n} CacheServed events (want exactly one)", o.qid),
                }),
                None => v.push(Violation {
                    invariant: "admission-soundness",
                    at: SimTime::ZERO,
                    detail: format!("q{} ended cache-hit without a CacheServed event", o.qid),
                }),
            },
            _ => {
                if rejected_terminal.contains(&o.qid) {
                    v.push(Violation {
                        invariant: "admission-soundness",
                        at: SimTime::ZERO,
                        detail: format!(
                            "q{} was terminally rejected but ended {}",
                            o.qid,
                            o.status.label()
                        ),
                    });
                }
                if merged_ev.contains_key(&o.qid) {
                    v.push(Violation {
                        invariant: "admission-soundness",
                        at: SimTime::ZERO,
                        detail: format!(
                            "q{} has a QueryMerged event but ended {}",
                            o.qid,
                            o.status.label()
                        ),
                    });
                }
                if cached_ev.contains_key(&o.qid) {
                    v.push(Violation {
                        invariant: "admission-soundness",
                        at: SimTime::ZERO,
                        detail: format!(
                            "q{} has a CacheServed event but ended {}",
                            o.qid,
                            o.status.label()
                        ),
                    });
                }
            }
        }
        if !issued.contains(&o.qid) {
            continue; // untraced protocol: structure laws are vacuous
        }
        match dones.get(&o.qid) {
            None => {
                // Legal: queries accounted post-run (dead sink, suppressed
                // timer) finalise without a live trace point.
            }
            Some(ds) => {
                if ds.len() > 1 {
                    v.push(Violation {
                        invariant: "terminal-status",
                        at: SimTime::ZERO,
                        detail: format!("q{} emitted {} QueryDone events", o.qid, ds.len()),
                    });
                }
                let (status, answer) = &ds[0];
                if *status != o.status.label() || *answer != o.answer {
                    v.push(Violation {
                        invariant: "terminal-status",
                        at: SimTime::ZERO,
                        detail: format!(
                            "q{}: QueryDone ({status}, {} ids) disagrees with outcome \
                             ({}, {} ids)",
                            o.qid,
                            answer.len(),
                            o.status.label(),
                            o.answer.len()
                        ),
                    });
                }
            }
        }
        let empty = BTreeMap::new();
        let heard_q = heard.get(&o.qid).unwrap_or(&empty);
        for id in &o.answer {
            match heard_q.get(id) {
                None => v.push(Violation {
                    invariant: "boundary-containment",
                    at: SimTime::ZERO,
                    detail: format!(
                        "q{}: answer contains {id}, never heard as a candidate",
                        o.qid
                    ),
                }),
                Some(&margin) if margin > opts.boundary_slack_m => v.push(Violation {
                    invariant: "boundary-containment",
                    at: SimTime::ZERO,
                    detail: format!(
                        "q{}: {id} heard {margin:.3} m outside the boundary \
                         (slack {:.1} m)",
                        o.qid, opts.boundary_slack_m
                    ),
                }),
                Some(_) => {}
            }
        }
    }
    v
}

/// [`check`], panicking with the full violation list on failure. Meant for
/// tests: wire it after any simulated run that had tracing enabled.
pub fn assert_clean(trace: &EventTrace, outcomes: &[QueryOutcome]) {
    let violations = check(trace, outcomes);
    assert!(
        violations.is_empty(),
        "protocol invariants violated ({}):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|x| format!("  {x}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use diknn_geom::Point;
    use diknn_sim::{TraceConfig, TraceEvent};

    fn trace_with(events: Vec<TraceEvent>) -> EventTrace {
        let mut t = EventTrace::new(&TraceConfig::verbose());
        for e in events {
            t.record(e.time, e.node, e.kind);
        }
        t
    }

    fn ev(nanos: u64, node: u32, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(nanos),
            node: NodeId(node),
            kind,
        }
    }

    fn proto(nanos: u64, node: u32, p: ProtoEvent) -> TraceEvent {
        ev(nanos, node, TraceKind::Proto(p))
    }

    fn outcome(qid: u32, status: QueryStatus, answer: Vec<u32>) -> QueryOutcome {
        QueryOutcome {
            qid,
            sink: NodeId(0),
            q: Point::new(0.0, 0.0),
            k: answer.len(),
            issued_at: SimTime::ZERO,
            completed_at: Some(SimTime::from_nanos(1)),
            answer: answer.into_iter().map(NodeId).collect(),
            boundary_radius: 10.0,
            final_radius: 10.0,
            routing_hops: 1,
            parts_expected: 1,
            parts_returned: 1,
            explored_nodes: 1,
            status,
        }
    }

    fn handoff(qid: u32, epoch: u32, to: u32, frontier: f64) -> ProtoEvent {
        ProtoEvent::TokenHandoff {
            qid,
            attempt: 0,
            sector: 0,
            epoch,
            to: NodeId(to),
            frontier,
        }
    }

    /// The home-node anchor every epoch-0 chain needs (cross-query law).
    fn estimated(qid: u32) -> ProtoEvent {
        ProtoEvent::BoundaryEstimated {
            qid,
            attempt: 0,
            radius: 10.0,
        }
    }

    #[test]
    fn clean_trace_passes() {
        let t = trace_with(vec![
            proto(
                0,
                0,
                ProtoEvent::QueryIssued {
                    qid: 0,
                    attempt: 0,
                    k: 1,
                },
            ),
            proto(1, 1, estimated(0)),
            proto(1, 1, handoff(0, 0, 2, 5.0)),
            proto(
                2,
                2,
                ProtoEvent::CandidateHeard {
                    qid: 0,
                    attempt: 0,
                    sector: 0,
                    responder: NodeId(7),
                    dist: 4.0,
                    radius: 10.0,
                },
            ),
            proto(3, 2, handoff(0, 0, 3, 9.0)),
            proto(
                4,
                0,
                ProtoEvent::QueryDone {
                    qid: 0,
                    status: "completed",
                    answer: vec![NodeId(7)],
                },
            ),
        ]);
        let outs = [outcome(0, QueryStatus::Completed, vec![7])];
        assert_eq!(check(&t, &outs), Vec::new());
    }

    #[test]
    fn custody_fork_is_flagged() {
        // n1 hands to n2, then n5 (never in the chain) hands the same
        // epoch on: two live copies.
        let t = trace_with(vec![
            proto(0, 1, estimated(0)),
            proto(1, 1, handoff(0, 0, 2, 5.0)),
            proto(2, 5, handoff(0, 0, 6, 6.0)),
        ]);
        let v = check(&t, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "token-epoch");
    }

    #[test]
    fn send_failed_retry_by_previous_sender_is_legal() {
        let t = trace_with(vec![
            proto(0, 1, estimated(0)),
            proto(1, 1, handoff(0, 0, 2, 5.0)),
            proto(2, 1, handoff(0, 0, 3, 5.0)), // n1 retries after n2 failed
            proto(3, 3, handoff(0, 0, 4, 7.0)),
        ]);
        assert_eq!(check(&t, &[]), Vec::new());
    }

    #[test]
    fn epoch0_without_home_anchor_is_flagged() {
        // An epoch-0 chain with no BoundaryEstimated for its query id: the
        // token materialised out of nowhere (or was stolen from another
        // query's pipeline).
        let t = trace_with(vec![proto(1, 1, handoff(0, 0, 2, 5.0))]);
        let v = check(&t, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "cross-query-custody");
        assert!(v[0].detail.contains("no BoundaryEstimated"));
    }

    #[test]
    fn epoch0_custody_from_foreign_home_is_flagged() {
        // Query 0's home is n1, query 1's home is n4 — but query 1's
        // epoch-0 chain starts at n1: custody crossed query ids.
        let t = trace_with(vec![
            proto(0, 1, estimated(0)),
            proto(0, 4, estimated(1)),
            proto(1, 1, handoff(0, 0, 2, 5.0)),
            proto(2, 1, handoff(1, 0, 3, 5.0)),
        ]);
        let v = check(&t, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "cross-query-custody");
        assert!(v[0].detail.contains("custody crossed query ids"));
    }

    #[test]
    fn interleaved_queries_with_own_homes_pass() {
        // Two queries in flight at once, each chain anchored at its own
        // home and interleaved in time: all laws hold per query id.
        let t = trace_with(vec![
            proto(0, 1, estimated(0)),
            proto(1, 4, estimated(1)),
            proto(2, 1, handoff(0, 0, 2, 5.0)),
            proto(3, 4, handoff(1, 0, 5, 4.0)),
            proto(4, 2, handoff(0, 0, 3, 6.0)),
            proto(5, 5, handoff(1, 0, 6, 4.5)),
        ]);
        assert_eq!(check(&t, &[]), Vec::new());
    }

    #[test]
    fn epoch_without_reissue_is_flagged() {
        let t = trace_with(vec![proto(1, 1, handoff(0, 3, 2, 5.0))]);
        let v = check(&t, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "token-epoch");
        assert!(v[0].detail.contains("without a TokenReissued"));
    }

    #[test]
    fn non_increasing_reissue_epoch_is_flagged() {
        let re = |epoch| ProtoEvent::TokenReissued {
            qid: 0,
            attempt: 0,
            sector: 0,
            epoch,
        };
        let t = trace_with(vec![proto(1, 1, re(2)), proto(2, 1, re(2))]);
        let v = check(&t, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "token-epoch");
    }

    #[test]
    fn dead_node_transmitting_is_flagged() {
        let t = trace_with(vec![
            ev(1, 3, TraceKind::Crash),
            ev(
                2,
                3,
                TraceKind::TxStart {
                    dest: None,
                    beacon: false,
                },
            ),
        ]);
        let v = check(&t, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "dead-silence");
    }

    #[test]
    fn recovered_node_may_transmit() {
        let t = trace_with(vec![
            ev(1, 3, TraceKind::Crash),
            ev(2, 3, TraceKind::Recover),
            ev(
                3,
                3,
                TraceKind::TxStart {
                    dest: None,
                    beacon: true,
                },
            ),
        ]);
        assert_eq!(check(&t, &[]), Vec::new());
    }

    #[test]
    fn churned_node_transmitting_is_flagged() {
        let t = trace_with(vec![
            ev(1, 3, TraceKind::Leave),
            ev(
                2,
                3,
                TraceKind::TxStart {
                    dest: None,
                    beacon: false,
                },
            ),
        ]);
        let v = check(&t, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "churn-silence");
    }

    #[test]
    fn rejoined_node_may_transmit() {
        let t = trace_with(vec![
            ev(1, 3, TraceKind::Leave),
            ev(2, 3, TraceKind::Rejoin),
            ev(
                3,
                3,
                TraceKind::TxStart {
                    dest: None,
                    beacon: true,
                },
            ),
        ]);
        assert_eq!(check(&t, &[]), Vec::new());
    }

    #[test]
    fn rejoin_clears_a_crash_too() {
        // The engine keeps one liveness flag: a crashed node brought back
        // by a Rejoin event is legitimately up again.
        let t = trace_with(vec![
            ev(1, 3, TraceKind::Crash),
            ev(2, 3, TraceKind::Rejoin),
            ev(
                3,
                3,
                TraceKind::TxStart {
                    dest: None,
                    beacon: true,
                },
            ),
        ]);
        assert_eq!(check(&t, &[]), Vec::new());
    }

    #[test]
    fn answer_never_heard_is_flagged() {
        let t = trace_with(vec![proto(
            0,
            0,
            ProtoEvent::QueryIssued {
                qid: 0,
                attempt: 0,
                k: 1,
            },
        )]);
        let outs = [outcome(0, QueryStatus::Completed, vec![9])];
        let v = check(&t, &outs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "boundary-containment");
        assert!(v[0].detail.contains("never heard"));
    }

    #[test]
    fn answer_heard_outside_boundary_is_flagged() {
        let t = trace_with(vec![
            proto(
                0,
                0,
                ProtoEvent::QueryIssued {
                    qid: 0,
                    attempt: 0,
                    k: 1,
                },
            ),
            proto(
                1,
                2,
                ProtoEvent::CandidateHeard {
                    qid: 0,
                    attempt: 0,
                    sector: 0,
                    responder: NodeId(9),
                    dist: 30.0,
                    radius: 10.0, // 20 m outside, beyond any slack
                },
            ),
        ]);
        let outs = [outcome(0, QueryStatus::Completed, vec![9])];
        let v = check(&t, &outs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "boundary-containment");
        assert!(v[0].detail.contains("outside the boundary"));
    }

    #[test]
    fn frontier_regression_is_flagged() {
        let t = trace_with(vec![
            proto(0, 1, estimated(0)),
            proto(1, 1, handoff(0, 0, 2, 8.0)),
            proto(2, 2, handoff(0, 0, 3, 3.0)),
        ]);
        let v = check(&t, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "itinerary-order");
    }

    #[test]
    fn energy_regression_is_flagged() {
        let t = trace_with(vec![
            ev(1, 4, TraceKind::Energy { spent_j: 0.5 }),
            ev(2, 4, TraceKind::Energy { spent_j: 0.3 }),
        ]);
        let v = check(&t, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "energy-monotone");
    }

    #[test]
    fn pending_outcome_is_flagged() {
        let t = trace_with(Vec::new());
        let mut o = outcome(0, QueryStatus::Pending, vec![]);
        o.completed_at = None;
        let v = check(&t, &[o]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "terminal-status");
    }

    #[test]
    fn duplicate_query_done_is_flagged() {
        let done = || ProtoEvent::QueryDone {
            qid: 0,
            status: "completed",
            answer: vec![],
        };
        let t = trace_with(vec![
            proto(
                0,
                0,
                ProtoEvent::QueryIssued {
                    qid: 0,
                    attempt: 0,
                    k: 1,
                },
            ),
            proto(1, 0, done()),
            proto(2, 0, done()),
        ]);
        let outs = [outcome(0, QueryStatus::Completed, vec![])];
        let v = check(&t, &outs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "terminal-status");
        assert!(v[0].detail.contains("QueryDone events"));
    }

    #[test]
    fn query_done_outcome_mismatch_is_flagged() {
        let t = trace_with(vec![
            proto(
                0,
                0,
                ProtoEvent::QueryIssued {
                    qid: 0,
                    attempt: 0,
                    k: 1,
                },
            ),
            proto(
                1,
                0,
                ProtoEvent::QueryDone {
                    qid: 0,
                    status: "token-lost",
                    answer: vec![],
                },
            ),
        ]);
        let outs = [outcome(0, QueryStatus::Completed, vec![])];
        let v = check(&t, &outs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "terminal-status");
        assert!(v[0].detail.contains("disagrees"));
    }

    #[test]
    fn overflowed_trace_is_flagged() {
        let mut t = EventTrace::new(&TraceConfig {
            enabled: true,
            capacity: 1,
            verbose: false,
        });
        t.record(SimTime::from_nanos(1), NodeId(0), TraceKind::Crash);
        t.record(SimTime::from_nanos(2), NodeId(1), TraceKind::Crash);
        let v = check(&t, &[]);
        assert!(v.iter().any(|x| x.invariant == "trace-complete"), "{v:?}");
    }

    #[test]
    fn untraced_protocol_outcomes_skip_structure_laws() {
        // No QueryIssued → a baseline's completed outcome with an answer
        // that was never "heard" must NOT be flagged.
        let t = trace_with(Vec::new());
        let outs = [outcome(0, QueryStatus::Completed, vec![4, 5])];
        assert_eq!(check(&t, &outs), Vec::new());
    }

    /// Law 8 positive twin: a full serving trace — an executed host, a
    /// merged rider, a cache hit off the host and a terminal rejection —
    /// is lawful.
    #[test]
    fn admission_soundness_clean_serving_trace_passes() {
        let t = trace_with(vec![
            proto(0, 0, ProtoEvent::QueryAdmitted { qid: 1, depth: 1 }),
            proto(
                0,
                0,
                ProtoEvent::QueryIssued {
                    qid: 1,
                    attempt: 0,
                    k: 1,
                },
            ),
            proto(
                1,
                2,
                ProtoEvent::CandidateHeard {
                    qid: 1,
                    attempt: 0,
                    sector: 0,
                    responder: NodeId(7),
                    dist: 4.0,
                    radius: 10.0,
                },
            ),
            proto(2, 0, ProtoEvent::QueryMerged { qid: 2, host: 1 }),
            proto(
                3,
                0,
                ProtoEvent::QueryDone {
                    qid: 1,
                    status: "completed",
                    answer: vec![NodeId(7)],
                },
            ),
            proto(
                4,
                0,
                ProtoEvent::CacheServed {
                    qid: 3,
                    src: 1,
                    age_s: 0.5,
                    ttl_s: 2.0,
                },
            ),
            proto(
                5,
                0,
                ProtoEvent::QueryRejected {
                    qid: 4,
                    depth: 9,
                    terminal: true,
                },
            ),
        ]);
        let outs = [
            outcome(1, QueryStatus::Completed, vec![7]),
            outcome(2, QueryStatus::Merged, vec![7]),
            outcome(3, QueryStatus::CacheHit, vec![7]),
            outcome(4, QueryStatus::Rejected, vec![]),
        ];
        assert_eq!(check(&t, &outs), Vec::new());
    }

    /// Law 8 violation twin: a terminally rejected query that executes
    /// anyway (admission *and* issue) is flagged at both events.
    #[test]
    fn rejected_then_executed_is_flagged() {
        let t = trace_with(vec![
            proto(
                0,
                0,
                ProtoEvent::QueryRejected {
                    qid: 0,
                    depth: 9,
                    terminal: true,
                },
            ),
            proto(1, 0, ProtoEvent::QueryAdmitted { qid: 0, depth: 1 }),
            proto(
                2,
                0,
                ProtoEvent::QueryIssued {
                    qid: 0,
                    attempt: 0,
                    k: 1,
                },
            ),
        ]);
        let v = check(&t, &[]);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.invariant == "admission-soundness"));
        assert!(v[0].detail.contains("admitted after terminal rejection"));
        assert!(v[1].detail.contains("issued after terminal rejection"));
    }

    /// A non-terminal rejection (defer + retry-after) is NOT an execution
    /// bar: the query may be admitted later.
    #[test]
    fn deferred_then_admitted_is_legal() {
        let t = trace_with(vec![
            proto(
                0,
                0,
                ProtoEvent::QueryRejected {
                    qid: 0,
                    depth: 9,
                    terminal: false,
                },
            ),
            proto(1, 0, ProtoEvent::QueryAdmitted { qid: 0, depth: 1 }),
        ]);
        assert_eq!(check(&t, &[]), Vec::new());
    }

    /// Law 8 violation twin: merged answers must come from candidates the
    /// host heard; foreign ids are mis-attribution.
    #[test]
    fn merged_answer_not_heard_by_host_is_flagged() {
        let t = trace_with(vec![
            proto(
                0,
                0,
                ProtoEvent::QueryIssued {
                    qid: 1,
                    attempt: 0,
                    k: 1,
                },
            ),
            proto(
                1,
                2,
                ProtoEvent::CandidateHeard {
                    qid: 1,
                    attempt: 0,
                    sector: 0,
                    responder: NodeId(7),
                    dist: 4.0,
                    radius: 10.0,
                },
            ),
            proto(2, 0, ProtoEvent::QueryMerged { qid: 2, host: 1 }),
        ]);
        // Node 9 was never heard by host q1.
        let outs = [outcome(2, QueryStatus::Merged, vec![9])];
        let v = check(&t, &outs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "admission-soundness");
        assert!(v[0].detail.contains("never heard by host"));
    }

    /// Law 8 violation twin: serving statuses without their decision event
    /// (and a rejection that was secretly executed) are flagged.
    #[test]
    fn serving_status_without_event_is_flagged() {
        let t = trace_with(vec![proto(
            0,
            0,
            ProtoEvent::QueryIssued {
                qid: 2,
                attempt: 0,
                k: 1,
            },
        )]);
        let outs = [
            outcome(0, QueryStatus::Merged, vec![]),
            outcome(1, QueryStatus::CacheHit, vec![]),
            outcome(2, QueryStatus::Rejected, vec![]),
        ];
        let v = check(&t, &outs);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|x| x.invariant == "admission-soundness"));
        assert!(v[0].detail.contains("without a QueryMerged event"));
        assert!(v[1].detail.contains("without a CacheServed event"));
        assert!(v[2].detail.contains("rejected but was executed"));
    }

    /// Law 8 violation twin: a cache hit served past its recorded TTL.
    #[test]
    fn cache_served_past_ttl_is_flagged() {
        let t = trace_with(vec![proto(
            0,
            0,
            ProtoEvent::CacheServed {
                qid: 3,
                src: 1,
                age_s: 3.0,
                ttl_s: 2.0,
            },
        )]);
        let v = check(&t, &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "admission-soundness");
        assert!(v[0].detail.contains("past its"));
    }

    /// Law 8 violation twin: two QueryMerged events for one query.
    #[test]
    fn duplicate_merge_is_flagged() {
        let t = trace_with(vec![
            proto(0, 0, ProtoEvent::QueryMerged { qid: 2, host: 1 }),
            proto(1, 0, ProtoEvent::QueryMerged { qid: 2, host: 5 }),
        ]);
        let outs = [outcome(2, QueryStatus::Merged, vec![])];
        let v = check(&t, &outs);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "admission-soundness");
        assert!(v[0].detail.contains("2 QueryMerged events"));
    }

    #[test]
    fn assert_clean_panics_with_violation_list() {
        let t = trace_with(vec![
            ev(1, 3, TraceKind::Crash),
            ev(
                2,
                3,
                TraceKind::TxStart {
                    dest: None,
                    beacon: false,
                },
            ),
        ]);
        let err = std::panic::catch_unwind(|| assert_clean(&t, &[])).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(msg.contains("dead-silence"), "{msg}");
    }
}
