//! The experiment driver: run a protocol over a scenario + workload for
//! several seeds and aggregate the paper's metrics.

use diknn_baselines::{
    Centralized, CentralizedConfig, Flood, FloodConfig, Kpt, KptConfig, PeerTree, PeerTreeConfig,
};
use diknn_core::{Diknn, DiknnConfig, KnnProtocol, QueryRequest};
use diknn_sim::{Protocol, SimConfig, Simulator, TraceConfig};

use crate::invariants;
use crate::metrics::{Aggregate, RunMetrics};
use crate::oracle::GroundTruth;
use crate::parallel::ParallelSweep;
use crate::scenario::ScenarioConfig;
use crate::workload::{self, WorkloadConfig};

/// Which protocol to run (with its configuration).
#[derive(Debug, Clone)]
pub enum ProtocolKind {
    Diknn(DiknnConfig),
    Kpt(KptConfig),
    PeerTree(PeerTreeConfig),
    Flood(FloodConfig),
    Centralized(CentralizedConfig),
}

impl ProtocolKind {
    /// Display name for experiment output (matches the paper's legends).
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Diknn(_) => "DIKNN",
            ProtocolKind::Kpt(_) => "KPT+KNNB",
            ProtocolKind::PeerTree(_) => "PeerTree",
            ProtocolKind::Flood(_) => "Flood",
            ProtocolKind::Centralized(_) => "Centralized",
        }
    }
}

/// A fully specified experiment cell: protocol × scenario × workload.
#[derive(Debug, Clone)]
pub struct Experiment {
    pub protocol: ProtocolKind,
    pub scenario: ScenarioConfig,
    pub workload: WorkloadConfig,
    /// Overrides applied to the scenario's [`SimConfig`] (e.g. loss rate);
    /// `None` keeps the scenario defaults.
    pub sim_tweak: Option<fn(&mut SimConfig)>,
    /// Fault-injection plan installed into the [`SimConfig`] (crashes,
    /// bursty loss, jamming, energy budgets); `None` keeps the scenario's
    /// (inert) plan. Applied after `sim_tweak`.
    pub fault_plan: Option<diknn_sim::FaultPlan>,
    /// Record a flight-recorder trace during each run and fail loudly
    /// (panic) if any protocol invariant is violated (see
    /// [`crate::invariants`]). On by default: every experiment doubles as a
    /// correctness check. Disable for benchmark timing runs.
    pub check_invariants: bool,
    /// Spatial shards for the intra-run executor (see
    /// [`crate::parallel::run_sharded`]). `1` (the default) runs the plain
    /// sequential loop; any value is bit-identical to it — invariant
    /// replay and metrics are unchanged by construction.
    pub shards: usize,
}

impl Experiment {
    pub fn new(protocol: ProtocolKind, scenario: ScenarioConfig, workload: WorkloadConfig) -> Self {
        Experiment {
            protocol,
            scenario,
            workload,
            sim_tweak: None,
            fault_plan: None,
            check_invariants: true,
            shards: 1,
        }
    }

    /// Run one seeded simulation and return its metrics.
    pub fn run_once(&self, seed: u64) -> RunMetrics {
        let mut scenario = self.scenario.clone();
        // Index-based protocols need their infrastructure nodes appended.
        match &self.protocol {
            ProtocolKind::PeerTree(cfg) => {
                scenario.infrastructure = PeerTree::clusterhead_positions(scenario.field, cfg.grid);
            }
            ProtocolKind::Centralized(_) => {
                scenario.infrastructure = vec![Centralized::base_position(scenario.field)];
            }
            _ => scenario.infrastructure.clear(),
        }
        let plans = scenario.build(seed);
        let oracle = GroundTruth::new(plans.clone(), scenario.nodes);
        let requests = workload::generate(&scenario, &self.workload, seed);
        let mut sim_cfg = scenario.sim_config();
        if let Some(tweak) = self.sim_tweak {
            tweak(&mut sim_cfg);
        }
        if let Some(plan) = &self.fault_plan {
            sim_cfg.faults = plan.clone();
        }
        if self.check_invariants {
            sim_cfg.trace = TraceConfig::enabled();
        }
        let check = self.check_invariants;
        let shards = self.shards;
        match &self.protocol {
            ProtocolKind::Diknn(cfg) => execute(
                sim_cfg,
                plans,
                Diknn::new(cfg.clone(), requests),
                seed,
                &oracle,
                check,
                shards,
            ),
            ProtocolKind::Kpt(cfg) => execute(
                sim_cfg,
                plans,
                Kpt::new(cfg.clone(), requests),
                seed,
                &oracle,
                check,
                shards,
            ),
            ProtocolKind::PeerTree(cfg) => execute(
                sim_cfg,
                plans,
                PeerTree::new(cfg.clone(), scenario.field, scenario.nodes, requests),
                seed,
                &oracle,
                check,
                shards,
            ),
            ProtocolKind::Flood(cfg) => execute(
                sim_cfg,
                plans,
                Flood::new(cfg.clone(), requests),
                seed,
                &oracle,
                check,
                shards,
            ),
            ProtocolKind::Centralized(cfg) => execute(
                sim_cfg,
                plans,
                Centralized::new(cfg.clone(), scenario.field, scenario.nodes, requests),
                seed,
                &oracle,
                check,
                shards,
            ),
        }
    }

    /// The seed of the `i`-th run of a sweep starting at `base_seed`.
    /// Shared by [`Experiment::run`] and [`Experiment::run_parallel`] so
    /// the two paths are seed-for-seed identical by construction.
    #[inline]
    pub fn sweep_seed(base_seed: u64, i: usize) -> u64 {
        base_seed.wrapping_add(i as u64 * 7919)
    }

    /// Run `runs` seeds (the paper averages 20) and aggregate.
    pub fn run(&self, runs: usize, base_seed: u64) -> Aggregate {
        let metrics: Vec<RunMetrics> = (0..runs)
            .map(|i| self.run_once(Self::sweep_seed(base_seed, i)))
            .collect();
        Aggregate::from_runs(&metrics)
    }

    /// [`Experiment::run`] across a worker pool. Per-run seeds are derived
    /// exactly as the sequential path derives them and results are
    /// aggregated in seed order, so the returned [`Aggregate`] is
    /// bit-identical to `self.run(runs, base_seed)` — parallelism changes
    /// wall time, never results (see [`crate::parallel`]).
    pub fn run_parallel(&self, runs: usize, base_seed: u64, sweep: &ParallelSweep) -> Aggregate {
        let metrics = sweep.map(runs, |i| self.run_once(Self::sweep_seed(base_seed, i)));
        Aggregate::from_runs(&metrics)
    }
}

fn execute<P>(
    sim_cfg: SimConfig,
    plans: Vec<diknn_sim::SharedMobility>,
    protocol: P,
    seed: u64,
    oracle: &GroundTruth,
    check: bool,
    shards: usize,
) -> RunMetrics
where
    P: Protocol + KnnProtocol,
{
    let mut sim = Simulator::new(sim_cfg, plans, protocol, seed);
    // Nodes have been in place before t=0: start with a warm beacon round,
    // as a long-running network would be.
    sim.warm_neighbor_tables();
    if shards > 1 {
        // Bit-identical to `sim.run()` for every shard count; the trace
        // replay below therefore checks the sharded executor too.
        crate::parallel::run_sharded_to_limit(&mut sim, shards);
    } else {
        sim.run();
    }
    let (mut protocol, ctx) = sim.into_parts();
    // Classify queries that never finalised (dead sink, suppressed timer).
    protocol.finish(&ctx);
    if check {
        invariants::assert_clean(ctx.trace(), protocol.outcomes());
    }
    let energy = ctx.total_protocol_energy_j();
    let stats = *ctx.stats();
    RunMetrics::compute(
        protocol.outcomes(),
        &stats,
        energy,
        ctx.flow_energy_j(),
        oracle,
    )
}

/// Convenience used by tests and benches: run all requests and return the
/// raw outcomes (single seed).
pub fn run_protocol_once(
    protocol: ProtocolKind,
    scenario: &ScenarioConfig,
    requests: Vec<QueryRequest>,
    seed: u64,
) -> (Vec<diknn_core::QueryOutcome>, f64) {
    run_protocol_once_faulted(protocol, scenario, requests, seed, None)
}

/// [`run_protocol_once`] with a fault plan installed into the simulation.
pub fn run_protocol_once_faulted(
    protocol: ProtocolKind,
    scenario: &ScenarioConfig,
    requests: Vec<QueryRequest>,
    seed: u64,
    fault_plan: Option<diknn_sim::FaultPlan>,
) -> (Vec<diknn_core::QueryOutcome>, f64) {
    let mut scenario = scenario.clone();
    match &protocol {
        ProtocolKind::PeerTree(cfg) => {
            scenario.infrastructure = PeerTree::clusterhead_positions(scenario.field, cfg.grid);
        }
        ProtocolKind::Centralized(_) => {
            scenario.infrastructure = vec![Centralized::base_position(scenario.field)];
        }
        _ => {}
    }
    let plans = scenario.build(seed);
    let mut sim_cfg = scenario.sim_config();
    if let Some(plan) = fault_plan {
        sim_cfg.faults = plan;
    }
    // Every one-shot run is also an invariant check: record a trace and
    // replay it against the outcomes before handing them back.
    sim_cfg.trace = TraceConfig::enabled();
    macro_rules! go {
        ($p:expr) => {{
            let mut sim = Simulator::new(sim_cfg, plans, $p, seed);
            sim.warm_neighbor_tables();
            sim.run();
            let (mut proto, ctx) = sim.into_parts();
            proto.finish(&ctx);
            invariants::assert_clean(ctx.trace(), proto.outcomes());
            let e = ctx.total_protocol_energy_j();
            (proto.outcomes().to_vec(), e)
        }};
    }
    match protocol {
        ProtocolKind::Diknn(cfg) => go!(Diknn::new(cfg, requests)),
        ProtocolKind::Kpt(cfg) => go!(Kpt::new(cfg, requests)),
        ProtocolKind::PeerTree(cfg) => {
            let field = scenario.field;
            let n = scenario.nodes;
            go!(PeerTree::new(cfg, field, n, requests))
        }
        ProtocolKind::Flood(cfg) => go!(Flood::new(cfg, requests)),
        ProtocolKind::Centralized(cfg) => {
            let field = scenario.field;
            let n = scenario.nodes;
            go!(Centralized::new(cfg, field, n, requests))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scenario() -> ScenarioConfig {
        ScenarioConfig {
            nodes: 120,
            duration: 25.0,
            max_speed: 0.0,
            ..ScenarioConfig::default()
        }
    }

    fn small_workload() -> WorkloadConfig {
        WorkloadConfig {
            k: 10,
            first_at: 2.0,
            last_at: 10.0,
            mean_interval: 4.0,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn diknn_experiment_produces_sane_metrics() {
        let exp = Experiment::new(
            ProtocolKind::Diknn(DiknnConfig::default()),
            small_scenario(),
            small_workload(),
        );
        let m = exp.run_once(1);
        assert!(m.queries >= 1);
        assert!(m.completed >= 1, "{m:?}");
        assert!(m.latency_s > 0.0 && m.latency_s < 10.0, "{m:?}");
        assert!(m.energy_j > 0.0);
        assert!(m.pre_accuracy > 0.5, "{m:?}");
        assert!(m.post_accuracy > 0.5, "{m:?}");
    }

    #[test]
    fn aggregate_over_multiple_seeds() {
        let exp = Experiment::new(
            ProtocolKind::Diknn(DiknnConfig::default()),
            small_scenario(),
            small_workload(),
        );
        let agg = exp.run(2, 42);
        assert_eq!(agg.runs, 2);
        assert!(agg.post_accuracy.mean > 0.5);
        assert!(agg.completion_rate.mean > 0.5);
    }

    #[test]
    fn all_protocols_run_through_the_driver() {
        for proto in [
            ProtocolKind::Diknn(DiknnConfig::default()),
            ProtocolKind::Kpt(KptConfig::default()),
            ProtocolKind::PeerTree(PeerTreeConfig::default()),
            ProtocolKind::Flood(FloodConfig::default()),
            ProtocolKind::Centralized(CentralizedConfig::default()),
        ] {
            let name = proto.name();
            let exp = Experiment::new(proto, small_scenario(), small_workload());
            let m = exp.run_once(3);
            assert!(m.queries >= 1, "{name}: no queries");
            assert!(m.completed >= 1, "{name}: no query completed ({m:?})");
        }
    }

    #[test]
    fn experiments_are_deterministic() {
        let exp = Experiment::new(
            ProtocolKind::Kpt(KptConfig::default()),
            small_scenario(),
            small_workload(),
        );
        assert_eq!(exp.run_once(9), exp.run_once(9));
    }
}
