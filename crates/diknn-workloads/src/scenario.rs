//! Scenario construction: networks matching the paper's settings table.

use std::sync::Arc;

use diknn_geom::{Point, Rect};
use diknn_mobility::{placement, Group, GroupConfig, RandomWaypoint, RwpConfig, StaticMobility};
use diknn_sim::{SharedMobility, SimConfig, SimDuration};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Initial node placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementKind {
    /// Uniform random (the paper's main experiments, §5.1).
    Uniform,
    /// Clustered "caribou-herd" placement standing in for the real-world
    /// distribution of Figure 7 (see DESIGN.md substitutions).
    Clustered(placement::ClusterConfig),
}

/// Herd (group mobility) setup: nodes move as cohesive groups following
/// wandering leaders — the Figure 7 caribou behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HerdSetup {
    /// Number of herds; nodes are split evenly among them (after the
    /// background share).
    pub herds: usize,
    /// Per-herd mobility parameters (field is overridden by the scenario).
    pub group: GroupConfig,
    /// Fraction of nodes roaming independently (RWP) as background.
    pub background_fraction: f64,
}

/// Network scenario parameters; defaults reproduce the settings table.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Number of *data* (sensor) nodes — 200 in the paper.
    pub nodes: usize,
    /// Field rectangle — 115×115 m² gives node degree ≈ 20.
    pub field: Rect,
    /// Maximum RWP speed `µmax` in m/s (0 ⇒ static network).
    pub max_speed: f64,
    pub placement: PlacementKind,
    /// When set, overrides `max_speed`/`placement` with cohesive mobile
    /// herds (Reference-Point Group Mobility).
    pub herds: Option<HerdSetup>,
    /// Simulated duration in seconds (100 s per run in the paper).
    pub duration: f64,
    /// Extra stationary infrastructure positions appended after the data
    /// nodes (Peer-tree clusterheads); empty for the other protocols.
    pub infrastructure: Vec<Point>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            nodes: 200,
            field: Rect::new(0.0, 0.0, 115.0, 115.0),
            max_speed: 10.0,
            placement: PlacementKind::Uniform,
            herds: None,
            duration: 100.0,
            infrastructure: Vec::new(),
        }
    }
}

impl ScenarioConfig {
    /// A variant whose field is sized for the given average node degree
    /// (the paper varies 200×200 → 115×115 m² for degrees 5 → 20).
    ///
    /// degree ≈ n·π·r² / A  ⇒  side = sqrt(n·π·r² / degree).
    pub fn with_node_degree(mut self, degree: f64, radio_range: f64) -> Self {
        assert!(degree > 0.0);
        let side =
            (self.nodes as f64 * std::f64::consts::PI * radio_range * radio_range / degree).sqrt();
        self.field = Rect::new(0.0, 0.0, side, side);
        self
    }

    /// Build the mobility plans for one run. The returned `Arc`s can be
    /// cloned to share the *same* plans with the ground-truth oracle.
    pub fn build(&self, seed: u64) -> Vec<SharedMobility> {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        if let Some(setup) = self.herds {
            return self.build_herds(setup, &mut rng);
        }
        let starts = match self.placement {
            PlacementKind::Uniform => placement::uniform(self.field, self.nodes, &mut rng),
            PlacementKind::Clustered(cfg) => {
                placement::clustered(self.field, self.nodes, &cfg, &mut rng)
            }
        };
        // Plans must outlive post-completion accuracy checks.
        let horizon = self.duration + 30.0;
        let mut plans: Vec<SharedMobility> = starts
            .into_iter()
            .map(|p| {
                if self.max_speed > 0.0 {
                    Arc::new(RandomWaypoint::new(
                        p,
                        &RwpConfig::new(self.field, self.max_speed, horizon),
                        &mut rng,
                    )) as SharedMobility
                } else {
                    Arc::new(StaticMobility::new(p)) as SharedMobility
                }
            })
            .collect();
        for &p in &self.infrastructure {
            plans.push(Arc::new(StaticMobility::new(p)) as SharedMobility);
        }
        plans
    }

    /// Build herd-structured mobility (Reference-Point Group Mobility).
    fn build_herds(&self, setup: HerdSetup, rng: &mut SmallRng) -> Vec<SharedMobility> {
        assert!(setup.herds > 0, "need at least one herd");
        assert!((0.0..=1.0).contains(&setup.background_fraction));
        let horizon = self.duration + 30.0;
        let group_cfg = GroupConfig {
            field: self.field,
            horizon,
            ..setup.group
        };
        let centers = placement::uniform(self.field, setup.herds, rng);
        let groups: Vec<Group> = centers
            .into_iter()
            .map(|c| Group::new(c, group_cfg, rng))
            .collect();
        let n_background = (self.nodes as f64 * setup.background_fraction).round() as usize;
        let n_members = self.nodes.saturating_sub(n_background);
        let mut plans: Vec<SharedMobility> = Vec::with_capacity(self.nodes);
        for i in 0..n_members {
            plans.push(Arc::new(groups[i % groups.len()].member(rng)) as SharedMobility);
        }
        let bg_speed = setup.group.leader_speed.max(1.0);
        for p in placement::uniform(self.field, n_background, rng) {
            plans.push(Arc::new(RandomWaypoint::new(
                p,
                &RwpConfig::new(self.field, bg_speed, horizon),
                rng,
            )) as SharedMobility);
        }
        for &p in &self.infrastructure {
            plans.push(Arc::new(StaticMobility::new(p)) as SharedMobility);
        }
        plans
    }

    /// The simulator configuration for this scenario.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            field: self.field,
            time_limit: SimDuration::from_secs_f64(self.duration),
            ..SimConfig::default()
        }
    }

    /// A uniform random point well inside the field (margin of one radio
    /// range), for query point generation.
    pub fn random_query_point(&self, rng: &mut impl Rng, margin: f64) -> Point {
        let m = margin.min(self.field.width() / 4.0);
        Point::new(
            rng.gen_range(self.field.min_x + m..=self.field.max_x - m),
            rng.gen_range(self.field.min_y + m..=self.field.max_y - m),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let s = ScenarioConfig::default();
        assert_eq!(s.nodes, 200);
        assert_eq!(s.field, Rect::new(0.0, 0.0, 115.0, 115.0));
        assert_eq!(s.max_speed, 10.0);
        assert_eq!(s.duration, 100.0);
    }

    #[test]
    fn build_is_deterministic_and_sized() {
        let s = ScenarioConfig::default();
        let a = s.build(42);
        let b = s.build(42);
        assert_eq!(a.len(), 200);
        for t in [0.0, 17.3, 99.0] {
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.position_at(t), y.position_at(t));
            }
        }
    }

    #[test]
    fn static_scenario_has_static_nodes() {
        let s = ScenarioConfig {
            max_speed: 0.0,
            ..ScenarioConfig::default()
        };
        let plans = s.build(1);
        assert_eq!(plans[0].position_at(0.0), plans[0].position_at(50.0));
    }

    #[test]
    fn infrastructure_appended_after_data_nodes() {
        let s = ScenarioConfig {
            nodes: 10,
            infrastructure: vec![Point::new(1.0, 2.0)],
            ..ScenarioConfig::default()
        };
        let plans = s.build(1);
        assert_eq!(plans.len(), 11);
        assert_eq!(plans[10].position_at(55.0), Point::new(1.0, 2.0));
    }

    #[test]
    fn node_degree_sizing() {
        let r = 20.0;
        let s = ScenarioConfig::default().with_node_degree(20.0, r);
        // 200·π·400/20 = 12566 m² -> side ≈ 112 m (the paper rounds to 115).
        assert!((s.field.width() - 112.1).abs() < 1.0, "{}", s.field.width());
        let sparse = ScenarioConfig::default().with_node_degree(5.0, r);
        assert!(sparse.field.width() > 1.9 * s.field.width());
    }

    #[test]
    fn herd_scenario_builds_cohesive_groups() {
        let s = ScenarioConfig {
            nodes: 60,
            herds: Some(HerdSetup {
                herds: 3,
                group: GroupConfig::default(),
                background_fraction: 0.1,
            }),
            duration: 50.0,
            ..ScenarioConfig::default()
        };
        let plans = s.build(5);
        assert_eq!(plans.len(), 60);
        // Determinism.
        let again = s.build(5);
        for t in [0.0, 21.0] {
            for (a, b) in plans.iter().zip(&again) {
                assert_eq!(a.position_at(t), b.position_at(t));
            }
        }
        // Members of the same herd stay close to each other over time.
        let d0 = plans[0].position_at(40.0).dist(plans[3].position_at(40.0));
        assert!(
            d0 < 2.5 * GroupConfig::default().spread + 10.0,
            "herd dispersed: {d0}"
        );
    }

    #[test]
    fn query_points_respect_margin() {
        let s = ScenarioConfig::default();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let p = s.random_query_point(&mut rng, 10.0);
            assert!(p.x >= 10.0 && p.x <= 105.0);
            assert!(p.y >= 10.0 && p.y <= 105.0);
        }
    }
}
