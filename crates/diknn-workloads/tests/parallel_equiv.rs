//! Parallel sweep equivalence: `Experiment::run_parallel` must return an
//! [`Aggregate`] bit-identical to the sequential `Experiment::run` for
//! the same `(runs, base_seed)` — same per-run seeds, same collection
//! order, same float summation order. Aggregates are compared with full
//! `PartialEq` (every mean/min/max/stddev field), so any reordering or
//! seed drift in the parallel path shows up immediately.

use diknn_core::DiknnConfig;
use diknn_sim::{NeighborIndex, SimConfig};
use diknn_workloads::{
    fault_sweep, Experiment, ParallelSweep, ProtocolKind, QueryLoad, ScenarioConfig, WorkloadConfig,
};

fn pinned_experiment() -> Experiment {
    Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        ScenarioConfig {
            nodes: 120,
            duration: 25.0,
            max_speed: 2.0,
            ..ScenarioConfig::default()
        },
        WorkloadConfig {
            k: 10,
            first_at: 2.0,
            last_at: 10.0,
            mean_interval: 4.0,
            ..WorkloadConfig::default()
        },
    )
}

#[test]
fn parallel_aggregate_is_bit_identical_to_sequential() {
    let exp = pinned_experiment();
    let sequential = exp.run(4, 42);
    for threads in [2, 8] {
        let parallel = exp.run_parallel(4, 42, &ParallelSweep::new(threads));
        assert_eq!(
            parallel, sequential,
            "{threads}-thread sweep diverged from the sequential aggregate"
        );
    }
    // One worker *is* the sequential loop.
    assert_eq!(exp.run_parallel(4, 42, &ParallelSweep::new(1)), sequential);
}

#[test]
fn faulted_parallel_sweep_matches_sequential() {
    // Fault plans draw from seed-derived RNG streams; the parallel path
    // must reproduce them run for run.
    let mut exp = pinned_experiment();
    exp.fault_plan = Some(fault_sweep::churn_and_bursts(25.0));
    let sequential = exp.run(3, 7);
    let parallel = exp.run_parallel(3, 7, &ParallelSweep::new(3));
    assert_eq!(parallel, sequential);
}

#[test]
fn multi_query_parallel_aggregate_is_bit_identical_to_sequential() {
    // The concurrent multi-query engine: a high arrival rate keeps many
    // queries in flight at once (interleaved timers, shared channel,
    // per-query energy ledgers). The parallel sweep must still be
    // bit-identical — including the new per-query fields (p50/p95
    // latency, max_in_flight, per-query energy attribution).
    let load = QueryLoad {
        rate_qps: 10.0,
        k: 10,
        first_at: 2.0,
        last_at: 10.0,
        ..QueryLoad::default()
    };
    let exp = Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        ScenarioConfig {
            nodes: 120,
            duration: 25.0,
            max_speed: 2.0,
            ..ScenarioConfig::default()
        },
        load.workload(),
    );
    let sequential = exp.run(3, 42);
    // The load regime is genuinely concurrent, not a relabelled
    // single-query sweep.
    assert!(
        sequential.max_in_flight.mean >= 2.0,
        "expected overlapping queries, got max_in_flight {:?}",
        sequential.max_in_flight
    );
    for threads in [2, 4] {
        let parallel = exp.run_parallel(3, 42, &ParallelSweep::new(threads));
        assert_eq!(
            parallel, sequential,
            "{threads}-thread multi-query sweep diverged from sequential"
        );
    }
}

#[test]
fn grid_and_brute_force_aggregates_agree() {
    // The spatial grid changes cost, not behaviour: the whole experiment
    // pipeline (warm tables, MAC, faults, metrics) aggregates identically
    // under either index, sequentially or in parallel.
    let grid_exp = pinned_experiment();
    let mut brute_exp = pinned_experiment();
    fn force_brute(cfg: &mut SimConfig) {
        cfg.neighbor_index = NeighborIndex::BruteForce;
    }
    brute_exp.sim_tweak = Some(force_brute);
    let grid = grid_exp.run_parallel(3, 11, &ParallelSweep::new(2));
    let brute = brute_exp.run(3, 11);
    assert_eq!(grid, brute);
}
