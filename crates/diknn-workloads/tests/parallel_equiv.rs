//! Parallel sweep equivalence: `Experiment::run_parallel` must return an
//! [`Aggregate`] bit-identical to the sequential `Experiment::run` for
//! the same `(runs, base_seed)` — same per-run seeds, same collection
//! order, same float summation order. Aggregates are compared with full
//! `PartialEq` (every mean/min/max/stddev field), so any reordering or
//! seed drift in the parallel path shows up immediately.

use diknn_core::{DiknnConfig, QueryStatus, ServingConfig};
use diknn_sim::{NeighborIndex, SimConfig};
use diknn_workloads::{
    admission_experiment, fault_sweep, Experiment, ParallelSweep, ProtocolKind, QueryLoad,
    ScenarioConfig, ServingSummary, WorkloadConfig,
};

fn pinned_experiment() -> Experiment {
    Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        ScenarioConfig {
            nodes: 120,
            duration: 25.0,
            max_speed: 2.0,
            ..ScenarioConfig::default()
        },
        WorkloadConfig {
            k: 10,
            first_at: 2.0,
            last_at: 10.0,
            mean_interval: 4.0,
            ..WorkloadConfig::default()
        },
    )
}

#[test]
fn parallel_aggregate_is_bit_identical_to_sequential() {
    let exp = pinned_experiment();
    let sequential = exp.run(4, 42);
    for threads in [2, 8] {
        let parallel = exp.run_parallel(4, 42, &ParallelSweep::new(threads));
        assert_eq!(
            parallel, sequential,
            "{threads}-thread sweep diverged from the sequential aggregate"
        );
    }
    // One worker *is* the sequential loop.
    assert_eq!(exp.run_parallel(4, 42, &ParallelSweep::new(1)), sequential);
}

#[test]
fn faulted_parallel_sweep_matches_sequential() {
    // Fault plans draw from seed-derived RNG streams; the parallel path
    // must reproduce them run for run.
    let mut exp = pinned_experiment();
    exp.fault_plan = Some(fault_sweep::churn_and_bursts(25.0));
    let sequential = exp.run(3, 7);
    let parallel = exp.run_parallel(3, 7, &ParallelSweep::new(3));
    assert_eq!(parallel, sequential);
}

#[test]
fn multi_query_parallel_aggregate_is_bit_identical_to_sequential() {
    // The concurrent multi-query engine: a high arrival rate keeps many
    // queries in flight at once (interleaved timers, shared channel,
    // per-query energy ledgers). The parallel sweep must still be
    // bit-identical — including the new per-query fields (p50/p95
    // latency, max_in_flight, per-query energy attribution).
    let load = QueryLoad {
        rate_qps: 10.0,
        k: 10,
        first_at: 2.0,
        last_at: 10.0,
        ..QueryLoad::default()
    };
    let exp = Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        ScenarioConfig {
            nodes: 120,
            duration: 25.0,
            max_speed: 2.0,
            ..ScenarioConfig::default()
        },
        load.workload(),
    );
    let sequential = exp.run(3, 42);
    // The load regime is genuinely concurrent, not a relabelled
    // single-query sweep.
    assert!(
        sequential.max_in_flight.mean >= 2.0,
        "expected overlapping queries, got max_in_flight {:?}",
        sequential.max_in_flight
    );
    for threads in [2, 4] {
        let parallel = exp.run_parallel(3, 42, &ParallelSweep::new(threads));
        assert_eq!(
            parallel, sequential,
            "{threads}-thread multi-query sweep diverged from sequential"
        );
    }
}

#[test]
fn overload_with_serving_classifies_every_query_and_stays_bit_identical() {
    // Pinned deep-overload regime: 25 q/s — the rate where the unprotected
    // engine collapses (post-accuracy ~0.02 in BENCH_query_load). With the
    // full serving layer on, every single query must still end in exactly
    // one terminal classification (completed / degraded / rejected /
    // merged / cache-hit, zero Pending), the admission-soundness law must
    // hold (checked inside run_once), and the parallel sweep must remain
    // bit-identical to the sequential loop.
    let load = QueryLoad {
        rate_qps: 25.0,
        k: 10,
        first_at: 2.0,
        last_at: 10.0,
        ..QueryLoad::default()
    };
    let exp = admission_experiment(120, 25.0, 2.0, &load, ServingConfig::enabled());
    let runs: Vec<_> = (0..3)
        .map(|i| exp.run_once(Experiment::sweep_seed(42, i)))
        .collect();
    let summary = ServingSummary::from_runs(&runs);
    assert!(
        summary.queries >= 100,
        "overload regime too small: {summary:?}"
    );
    assert!(
        summary.all_terminal(),
        "every query must be classified: {summary:?}"
    );
    assert_eq!(summary.pending, 0, "{summary:?}");
    for m in &runs {
        for q in &m.per_query {
            assert_ne!(
                q.status,
                QueryStatus::Pending,
                "q{} unclassified after finish",
                q.qid
            );
        }
    }
    // The serving layer must actually engage at this rate.
    assert!(
        summary.rejected + summary.merged + summary.cache_hits > 0,
        "25 q/s must exercise shedding/coalescing: {summary:?}"
    );
    // Bit-identity under the parallel sweep, per-query rows included.
    let sequential = exp.run(3, 42);
    for threads in [2, 4] {
        let parallel = exp.run_parallel(3, 42, &ParallelSweep::new(threads));
        assert_eq!(
            parallel, sequential,
            "{threads}-thread serving sweep diverged from sequential"
        );
    }
}

#[test]
fn grid_and_brute_force_aggregates_agree() {
    // The spatial grid changes cost, not behaviour: the whole experiment
    // pipeline (warm tables, MAC, faults, metrics) aggregates identically
    // under either index, sequentially or in parallel.
    let grid_exp = pinned_experiment();
    let mut brute_exp = pinned_experiment();
    fn force_brute(cfg: &mut SimConfig) {
        cfg.neighbor_index = NeighborIndex::BruteForce;
    }
    brute_exp.sim_tweak = Some(force_brute);
    let grid = grid_exp.run_parallel(3, 11, &ParallelSweep::new(2));
    let brute = brute_exp.run(3, 11);
    assert_eq!(grid, brute);
}
