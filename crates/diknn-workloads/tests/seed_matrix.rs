//! Seed-matrix smoke pass: every protocol × scenario shape from the tier-1
//! suite, over 5 fixed seeds, asserting *structure* instead of metric
//! thresholds.
//!
//! The accuracy/energy assertions elsewhere are seed-sensitive by nature
//! (`flood_answers_but_burns_energy` had to be re-pinned more than once);
//! this matrix catches the failures that matter structurally, on every
//! seed: the run terminates, every query is classified, and — via the
//! runner's built-in trace replay — all protocol invariants held. A seed
//! that breaks here is a bug, not a flake.

use diknn_baselines::{FloodConfig, KptConfig, PeerTreeConfig};
use diknn_core::{DiknnConfig, QueryStatus};
use diknn_sim::FaultPlan;
use diknn_workloads::{
    fault_sweep, status_index, Experiment, ProtocolKind, ScenarioConfig, WorkloadConfig,
};

const SEEDS: [u64; 5] = [11, 23, 47, 101, 2007];

fn protocols() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::Diknn(DiknnConfig::default()),
        ProtocolKind::Kpt(KptConfig::default()),
        ProtocolKind::PeerTree(PeerTreeConfig::default()),
        ProtocolKind::Flood(FloodConfig::default()),
    ]
}

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        k: 10,
        first_at: 2.0,
        last_at: 10.0,
        mean_interval: 4.0,
        ..WorkloadConfig::default()
    }
}

/// Run one experiment cell over all seeds; `run_once` panics internally on
/// any invariant violation, so the assertions here are only liveness.
fn smoke(label: &str, mut make: impl FnMut(ProtocolKind) -> Experiment) {
    for proto in protocols() {
        let name = proto.name();
        let exp = make(proto);
        for seed in SEEDS {
            let m = exp.run_once(seed);
            assert!(m.queries >= 1, "{label}/{name} seed {seed}: no queries ran");
            assert_eq!(
                m.status_counts[status_index(QueryStatus::Pending)],
                0,
                "{label}/{name} seed {seed}: unclassified queries: {:?}",
                m.status_counts
            );
            let classified: usize = m.status_counts.iter().sum();
            assert_eq!(
                classified, m.queries,
                "{label}/{name} seed {seed}: status counts do not partition"
            );
        }
    }
}

#[test]
fn static_network_matrix() {
    smoke("static", |proto| {
        Experiment::new(
            proto,
            ScenarioConfig {
                nodes: 120,
                duration: 20.0,
                max_speed: 0.0,
                ..ScenarioConfig::default()
            },
            workload(),
        )
    });
}

#[test]
fn mobile_network_matrix() {
    smoke("mobile", |proto| {
        Experiment::new(
            proto,
            ScenarioConfig {
                nodes: 120,
                duration: 20.0,
                max_speed: 10.0,
                ..ScenarioConfig::default()
            },
            workload(),
        )
    });
}

#[test]
fn churn_and_bursts_matrix() {
    smoke("faulted", |proto| {
        let scenario = ScenarioConfig {
            nodes: 150,
            duration: 25.0,
            max_speed: 5.0,
            ..ScenarioConfig::default()
        };
        let mut exp = Experiment::new(proto, scenario, workload());
        exp.fault_plan = Some(fault_sweep::churn_and_bursts(25.0));
        exp
    });
}

#[test]
fn energy_budget_matrix() {
    smoke("energy", |proto| {
        let scenario = ScenarioConfig {
            nodes: 120,
            duration: 20.0,
            max_speed: 5.0,
            ..ScenarioConfig::default()
        };
        let mut exp = Experiment::new(proto, scenario, workload());
        exp.fault_plan = Some(FaultPlan {
            energy_budget_j: Some(0.05),
            ..FaultPlan::default()
        });
        exp
    });
}
