//! Cross-shard equivalence: the space-partitioned parallel engine
//! (`diknn_sim::shard`, `diknn_workloads::parallel::run_sharded`) must be
//! **bit-identical** to the sequential engine for every shard count —
//! same flight-recorder trace, same `SimStats`, same energy, same
//! `RunMetrics`/`Aggregate` — under mobility, crashes, churn, and across
//! a snapshot/restore cut taken mid-run on the sharded loop. This is the
//! same oracle discipline `grid_equiv.rs` applies to the spatial grid and
//! `parallel_equiv.rs` applies to the seed sweep: parallelism may change
//! wall time, never results.

use diknn_core::{Diknn, DiknnConfig};
use diknn_sim::{Protocol, SimTime, Simulator, TraceConfig};
use diknn_snap::{Snap, SnapWriter};
use diknn_workloads::{
    fault_sweep, run_sharded, run_sharded_to_limit, workload, Experiment, ProtocolKind,
    ScenarioConfig, WorkloadConfig,
};
use proptest::prelude::*;

/// Shard counts every equivalence check sweeps (1 = the inline executor
/// on the sharded loop; the rest use real `ShardPool` worker threads).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn scenario(nodes: usize, max_speed: f64) -> ScenarioConfig {
    ScenarioConfig {
        nodes,
        duration: 25.0,
        max_speed,
        ..ScenarioConfig::default()
    }
}

fn workload_cfg() -> WorkloadConfig {
    WorkloadConfig {
        k: 10,
        first_at: 2.0,
        last_at: 10.0,
        mean_interval: 4.0,
        ..WorkloadConfig::default()
    }
}

/// Build the exact simulator the experiment driver would run (warm
/// tables, trace recorder on) so sharded and sequential starts are
/// byte-identical.
fn build_sim(scen: &ScenarioConfig, seed: u64) -> Simulator<Diknn> {
    let plans = scen.build(seed);
    let requests = workload::generate(scen, &workload_cfg(), seed);
    let mut cfg = scen.sim_config();
    cfg.trace = TraceConfig::enabled();
    let mut sim = Simulator::new(
        cfg,
        plans,
        Diknn::new(DiknnConfig::default(), requests),
        seed,
    );
    sim.warm_neighbor_tables();
    sim
}

/// FNV-1a fingerprint of the serialized flight recorder — bitwise trace
/// equality, cheap to compare (the `ServiceRun` soak suite's oracle).
fn trace_fp<P: Protocol>(sim: &Simulator<P>) -> u64 {
    let mut w = SnapWriter::new();
    sim.ctx().trace().snap(&mut w);
    diknn_snap::fingerprint(&w.into_bytes())
}

#[test]
fn sharded_run_is_bit_identical_to_sequential() {
    let scen = scenario(120, 2.0);
    let mut seq = build_sim(&scen, 42);
    seq.run();
    let seq_fp = trace_fp(&seq);
    let seq_stats = *seq.ctx().stats();
    let seq_energy = seq.ctx().total_protocol_energy_j();
    for shards in SHARD_COUNTS {
        let mut sim = build_sim(&scen, 42);
        run_sharded_to_limit(&mut sim, shards);
        // Not a vacuous pass: the sharded loop must actually plan and
        // consume precomputed audible sets, not fall back to inline
        // computation for everything.
        let perf = sim.ctx().perf();
        assert!(
            perf.precomp_planned > 0 && perf.precomp_used > 0,
            "{shards}-shard run never engaged the precompute path: {perf:?}"
        );
        assert_eq!(
            trace_fp(&sim),
            seq_fp,
            "{shards}-shard trace diverged from sequential"
        );
        assert_eq!(*sim.ctx().stats(), seq_stats, "{shards}-shard stats");
        assert_eq!(
            sim.ctx().total_protocol_energy_j(),
            seq_energy,
            "{shards}-shard energy"
        );
    }
}

#[test]
fn sharded_experiment_aggregate_matches_sequential() {
    // Whole-driver equivalence: metrics, invariant replay (check_invariants
    // stays on, so the merged trace is replayed against outcomes inside
    // run_once) and aggregation across seeds.
    let mut exp = Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        scenario(120, 2.0),
        workload_cfg(),
    );
    let sequential = exp.run(3, 42);
    for shards in [2, 4, 7] {
        exp.shards = shards;
        assert_eq!(
            exp.run(3, 42),
            sequential,
            "{shards}-shard aggregate diverged"
        );
    }
}

#[test]
fn faulted_sharded_experiment_matches_sequential() {
    // Churn + bursty links: liveness flips on every lifecycle event, so
    // this exercises the alive-version stamp that invalidates precomputed
    // audible sets.
    let mut exp = Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        scenario(120, 2.0),
        workload_cfg(),
    );
    exp.fault_plan = Some(fault_sweep::churn_and_bursts(25.0));
    let sequential = exp.run(2, 7);
    for shards in [2, 7] {
        exp.shards = shards;
        assert_eq!(
            exp.run(2, 7),
            sequential,
            "{shards}-shard faulted aggregate diverged"
        );
    }
}

#[test]
fn snapshot_restore_cut_mid_sharded_run_is_bit_identical() {
    // run(T) sharded ≡ run(T/2) sharded + snapshot + restore + run(T)
    // sharded ≡ run(T) sequential: the sharded loop's derived state
    // (plan feed, precomputed sets, world snapshots) must never leak into
    // the snapshot stream (SNAP_VERSION is unchanged), and a restored run
    // must rebuild it from the queue alone.
    let scen = scenario(100, 2.0);
    let seed = 11;
    let mut seq = build_sim(&scen, seed);
    seq.run();
    let seq_fp = trace_fp(&seq);
    let seq_stats = *seq.ctx().stats();
    let limit = SimTime::ZERO + scen.sim_config().time_limit;
    let cut = SimTime::from_secs_f64(scen.duration / 2.0);
    for shards in [2, 4] {
        let mut head = build_sim(&scen, seed);
        run_sharded(&mut head, cut, shards);
        let bytes = head.snapshot();
        drop(head);
        let plans = scen.build(seed);
        let requests = workload::generate(&scen, &workload_cfg(), seed);
        let mut cfg = scen.sim_config();
        cfg.trace = TraceConfig::enabled();
        let mut tail = Simulator::restore(
            &bytes,
            cfg,
            plans,
            Diknn::new(DiknnConfig::default(), requests),
        )
        .expect("mid-sharded-run snapshot must restore");
        run_sharded(&mut tail, limit, shards);
        assert_eq!(
            trace_fp(&tail),
            seq_fp,
            "{shards}-shard restore-cut trace diverged"
        );
        assert_eq!(
            *tail.ctx().stats(),
            seq_stats,
            "{shards}-shard restore-cut stats"
        );
    }
}

proptest! {
    // Each case runs one sequential and one sharded full simulation; keep
    // the count modest (the pinned tests above cover the axes densely).
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_scenarios_are_shard_count_invariant(
        seed in 0u64..10_000,
        nodes in 60usize..140,
        mobile in any::<bool>(),
        faulted in any::<bool>(),
        shard_ix in 0usize..SHARD_COUNTS.len(),
    ) {
        let scen = scenario(nodes, if mobile { 4.0 } else { 0.0 });
        let shards = SHARD_COUNTS[shard_ix];
        let mut exp = Experiment::new(
            ProtocolKind::Diknn(DiknnConfig::default()),
            scen,
            workload_cfg(),
        );
        if faulted {
            exp.fault_plan = Some(fault_sweep::churn_and_bursts(25.0));
        }
        let sequential = exp.run_once(seed);
        exp.shards = shards;
        let sharded = exp.run_once(seed);
        // Compare the lossless Debug rendering, not `PartialEq`: faulted
        // runs can leave `latency_s: NaN` on unreachable queries, and
        // NaN != NaN would fail two bit-identical runs.
        prop_assert_eq!(
            format!("{sharded:?}"),
            format!("{sequential:?}"),
            "seed {} nodes {} shards {} diverged",
            seed,
            nodes,
            shards
        );
    }
}
