//! Regression: a stale lower-epoch token carrier must never duplicate a
//! watchdog re-issue epoch (the custody-fork bug found by `query_load`).
//!
//! The race: node A hands a sector token to B and arms the watchdog;
//! B collects (probes alone do not disarm, by design); A's watchdog fires
//! and re-issues at epoch+1 to C; *milliseconds later* B's collection
//! window closes and B hands off its now-stale epoch-0 copy. Pre-fix that
//! stale handoff clobbered the live chain's watchdog, and when the
//! hijacked watch fired it re-issued a duplicate of the live epoch —
//! forking token custody across two same-epoch chains:
//!
//! ```text
//! [token-epoch] q39 attempt 0 sector 1: re-issue epoch 1 does not exceed previous 1
//! [token-epoch] q39 attempt 0 sector 1 epoch 1: handoff by n437 but custody was with n130
//! ```
//!
//! This pins the exact seeded 500-node load cell that exposed the race
//! (seed 16838 = `sweep_seed(1000, 2)`, rate 2 q/s, k = 40, static).
//! The fix is send-side epoch suppression: `advance_token`,
//! `finish_sector`, and `watchdog_fire` all abandon a token whose epoch
//! is below the sector's current epoch.

use diknn_core::{Diknn, DiknnConfig, KnnProtocol};
use diknn_sim::{Simulator, TraceConfig};
use diknn_workloads::{invariants, workload, Experiment, QueryLoad, ScenarioConfig};

#[test]
fn stale_carrier_cannot_duplicate_a_reissue_epoch() {
    // The violating run was a 40 s cell; the fork fires at t = 28.2 s, so
    // a 32 s horizon keeps the identical event stream (arrivals are pinned
    // by first_at/last_at, mobility is static) at 80 % of the cost.
    let load = QueryLoad {
        rate_qps: 2.0,
        k: 40,
        first_at: 2.0,
        last_at: 30.0,
        ..QueryLoad::default()
    };
    let scenario = ScenarioConfig {
        nodes: 500,
        duration: 32.0,
        max_speed: 0.0,
        ..ScenarioConfig::default()
    };
    let seed = Experiment::sweep_seed(1000, 2);
    let plans = scenario.build(seed);
    let requests = workload::generate(&scenario, &load.workload(), seed);
    let mut sim_cfg = scenario.sim_config();
    sim_cfg.trace = TraceConfig::enabled();
    let mut sim = Simulator::new(
        sim_cfg,
        plans,
        Diknn::new(DiknnConfig::default(), requests),
        seed,
    );
    sim.warm_neighbor_tables();
    sim.run();
    let (mut proto, ctx) = sim.into_parts();
    proto.finish(&ctx);
    let rendered = ctx.trace().render_protocol();
    // Non-vacuity: the legitimate watchdog re-issue that seeds the race
    // must still happen — only the stale carrier's duplicate is gone.
    assert!(
        rendered.contains("proto reissue"),
        "pinned scenario no longer exercises a watchdog re-issue"
    );
    let violations = invariants::check(ctx.trace(), proto.outcomes());
    assert!(
        violations.is_empty(),
        "protocol laws violated under concurrent load:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
