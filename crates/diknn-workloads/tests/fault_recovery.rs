//! Acceptance tests for the fault-injection + self-healing work: under
//! heavy churn and bursty links every query must *terminate with a
//! classified outcome* (no silent hangs until `time_limit`), and the
//! recovery machinery (token watchdog + sink retry) must measurably raise
//! completion over running with it disabled.

use diknn_baselines::PeerTreeConfig;
use diknn_core::{DiknnConfig, QueryStatus};
use diknn_sim::FaultPlan;
use diknn_workloads::{
    fault_sweep, status_index, Experiment, ProtocolKind, RunMetrics, ScenarioConfig, WorkloadConfig,
};

fn scenario() -> ScenarioConfig {
    ScenarioConfig {
        nodes: 200,
        duration: 30.0,
        max_speed: 5.0,
        ..ScenarioConfig::default()
    }
}

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        k: 10,
        first_at: 2.0,
        last_at: 22.0,
        mean_interval: 2.0,
        ..WorkloadConfig::default()
    }
}

fn run_with(cfg: DiknnConfig, seed: u64) -> RunMetrics {
    let mut exp = Experiment::new(ProtocolKind::Diknn(cfg), scenario(), workload());
    exp.fault_plan = Some(fault_sweep::churn_and_bursts(scenario().duration));
    exp.run_once(seed)
}

/// Default recovery, with a sink timeout short enough that a retry round
/// still fits before `time_limit` (the stock 20 s is sized for 100 s
/// paper-scale runs).
fn recovery_on() -> DiknnConfig {
    DiknnConfig {
        sink_timeout: 6.0,
        ..DiknnConfig::default()
    }
}

fn recovery_off() -> DiknnConfig {
    DiknnConfig {
        token_watchdog: false,
        max_query_retries: 0,
        ..recovery_on()
    }
}

/// With 20% of nodes crashing mid-run and half-severity bursty links,
/// every query ends with a definite status: completed, or degraded with a
/// reason. `Pending` after the run would be a silent hang.
#[test]
fn every_query_terminates_with_a_classified_outcome() {
    for seed in [1u64, 2, 3, 4] {
        for cfg in [recovery_on(), recovery_off()] {
            let m = run_with(cfg, seed);
            assert!(
                m.queries >= 3,
                "seed {seed}: vacuous run ({} queries)",
                m.queries
            );
            assert_eq!(
                m.status_counts[status_index(QueryStatus::Pending)],
                0,
                "seed {seed}: unclassified queries: {:?}",
                m.status_counts
            );
            // Degraded + completed partitions the query set.
            let classified: usize = m.status_counts.iter().sum();
            assert_eq!(classified, m.queries, "seed {seed}");
        }
    }
}

/// Regression for the Peer-tree stage-2 recursion fix: on a sparse network
/// under severe bursty loss, neighbour tables starve and a clusterhead
/// holding a *final-stage* (stage-2) query can find itself routeless.
/// Before the guard in `forward_query`, `query_at_head` and
/// `forward_query` would mutually recurse at that head until the stack
/// overflowed; the fix drops the query so it ages out at the sink. This
/// test dies (process abort) if the recursion ever comes back, and the
/// runner's invariant checker vouches for the rest of the run.
#[test]
fn routeless_final_stage_peertree_query_is_dropped() {
    // nodes=40 (degree ≈ 3.8) + severity-0.9 bursts: verified by
    // temporarily instrumenting the drop branch that these seeds reach a
    // routeless stage-2 head — the test is not vacuous.
    let sparse = ScenarioConfig {
        nodes: 40,
        duration: 30.0,
        max_speed: 5.0,
        ..ScenarioConfig::default()
    };
    let wl = WorkloadConfig {
        k: 5,
        first_at: 2.0,
        last_at: 20.0,
        mean_interval: 2.0,
        ..WorkloadConfig::default()
    };
    for seed in [1u64, 2, 3, 4, 7, 8] {
        let mut exp = Experiment::new(
            ProtocolKind::PeerTree(PeerTreeConfig::default()),
            sparse.clone(),
            wl,
        );
        exp.fault_plan = Some(FaultPlan::bursty(0.9));
        let m = exp.run_once(seed);
        assert!(m.queries >= 3, "seed {seed}: vacuous run");
        assert_eq!(
            m.status_counts[status_index(QueryStatus::Pending)],
            0,
            "seed {seed}: unclassified queries: {:?}",
            m.status_counts
        );
    }
}

/// The watchdog + sink retry must buy completions back under faults: over
/// a set of seeds, recovery-on completes strictly more queries than
/// recovery-off, and actually exercises the machinery (re-issues or
/// retries observed).
#[test]
fn recovery_measurably_raises_completion_under_faults() {
    // "Complete" here means *fully* complete (every sector merged): queries
    // that time out with partial sectors still carry a `completed_at`, so
    // `RunMetrics::completed` alone cannot see what recovery buys back.
    let full = |m: &RunMetrics| m.status_counts[status_index(QueryStatus::Completed)];
    let mut on = (0usize, 0usize); // (fully completed, queries)
    let mut off = (0usize, 0usize);
    let mut recoveries = 0u64;
    for seed in 1u64..=6 {
        let m_on = run_with(recovery_on(), seed);
        let m_off = run_with(recovery_off(), seed);
        assert_eq!(m_on.queries, m_off.queries, "seed {seed}: workloads differ");
        on.0 += full(&m_on);
        on.1 += m_on.queries;
        off.0 += full(&m_off);
        off.1 += m_off.queries;
        recoveries += m_on.tokens_reissued + m_on.query_retries;
        println!(
            "seed {seed}: on {:?} (reissues {}, retries {}) vs off {:?}",
            m_on.status_counts, m_on.tokens_reissued, m_on.query_retries, m_off.status_counts,
        );
    }
    assert!(
        recoveries > 0,
        "fault plan never exercised the recovery machinery"
    );
    assert!(
        on.0 > off.0,
        "recovery should complete more queries: on {}/{} vs off {}/{}",
        on.0,
        on.1,
        off.0,
        off.1
    );
}
