//! Soak regression suite: three pinned long-horizon resident-service
//! scenarios, each 1000 simulated seconds — an order of magnitude past the
//! longest batch test — checked for total accounting (every arrival
//! reaches a terminal status), finite rolling metrics at every sampled
//! epoch, and the full invariant law set (laws 1–9) over the flight
//! recorder.

use diknn_core::{DiknnConfig, KnnProtocol, QueryStatus, ServingConfig};
use diknn_geom::Point;
use diknn_sim::{FaultPlan, FaultRegion, JamZone, SimDuration};
use diknn_workloads::{
    invariants, RateSchedule, ScenarioConfig, ServiceConfig, ServiceMetrics, ServiceRun,
};

const HORIZON_S: f64 = 1000.0;
const EPOCH_S: f64 = 5.0;
const EPOCHS: u64 = (HORIZON_S / EPOCH_S) as u64;

fn soak_scenario(nodes: usize, max_speed: f64) -> ScenarioConfig {
    ScenarioConfig {
        nodes,
        max_speed,
        duration: HORIZON_S,
        ..ScenarioConfig::default()
    }
}

fn assert_finite(m: &ServiceMetrics) {
    assert!(m.sim_time_s.is_finite(), "{m:?}");
    assert!(m.completion_rate.is_finite(), "{m:?}");
    assert!(
        m.latency_p50_s.is_finite() && m.latency_p50_s >= 0.0,
        "{m:?}"
    );
    assert!(
        m.latency_p95_s.is_finite() && m.latency_p95_s >= 0.0,
        "{m:?}"
    );
    assert!(m.latency_p50_s <= m.latency_p95_s + 1e-12, "{m:?}");
    assert!(
        m.joules_per_query.is_finite() && m.joules_per_query >= 0.0,
        "{m:?}"
    );
}

/// Drive a run to the full horizon in bursts, checking the rolling metrics
/// at every sampling point, then tear down and run the invariant checker.
/// Returns the status census.
fn soak(cfg: ServiceConfig, seed: u64) -> (u64, Vec<(QueryStatus, usize)>) {
    // Only fault mechanisms that take nodes down can swallow an issue
    // timer; link loss and jamming cannot.
    let cfg_allows_no_loss = cfg.faults.crashes.is_empty()
        && cfg.faults.random_crashes.is_none()
        && cfg.faults.energy_budget_j.is_none()
        && cfg.faults.churn.is_none();
    let mut run = ServiceRun::new(cfg, seed);
    let burst = 20; // sample metrics every 20 epochs (100 s)
    let mut done = 0;
    while done < EPOCHS {
        let n = burst.min(EPOCHS - done);
        run.run_epochs(n);
        done += n;
        assert_finite(&run.metrics());
    }
    assert!(
        (run.sim().ctx().now().as_secs_f64() - HORIZON_S).abs() < EPOCH_S + 1.0,
        "run should have reached the horizon"
    );
    let injected = run.injected();
    let never_issued = run.metrics().never_issued;
    let (protocol, ctx) = run.finish();
    // Laws 1–9 over the whole recorded history.
    invariants::assert_clean(ctx.trace(), protocol.outcomes());
    // Total accounting: every injected request either issued (and below,
    // reached a terminal status) or died client-side because its sink was
    // offline at issue time — the engine suppresses timers of down nodes.
    assert_eq!(
        protocol.outcomes().len() as u64 + never_issued,
        injected,
        "request accounting must balance"
    );
    if cfg_allows_no_loss {
        assert_eq!(
            never_issued, 0,
            "without churn or crashes every request must issue"
        );
    }
    let mut census: Vec<(QueryStatus, usize)> = Vec::new();
    for o in protocol.outcomes() {
        assert_ne!(
            o.status,
            QueryStatus::Pending,
            "query {} never reached a terminal status",
            o.qid
        );
        match census.iter_mut().find(|(s, _)| *s == o.status) {
            Some((_, n)) => *n += 1,
            None => census.push((o.status, 1)),
        }
    }
    (injected, census)
}

fn count(census: &[(QueryStatus, usize)], s: QueryStatus) -> usize {
    census
        .iter()
        .find(|(k, _)| *k == s)
        .map(|(_, n)| *n)
        .unwrap_or(0)
}

/// Scenario 1: steady node churn for the whole horizon — a quarter of the
/// population cycles through leave/rejoin with state loss while queries
/// keep arriving.
#[test]
fn soak_steady_churn() {
    let mut cfg = ServiceConfig::new(soak_scenario(110, 5.0), RateSchedule::constant(0.4));
    cfg.k = 8;
    cfg.faults = FaultPlan::churning(0.25, 60.0, 20.0, 5.0, HORIZON_S - 50.0);
    let (injected, census) = soak(cfg, 71);
    assert!(injected > 300, "expected ~400 arrivals, got {injected}");
    let completed = count(&census, QueryStatus::Completed);
    assert!(
        completed as f64 / injected as f64 > 0.3,
        "churn should degrade but not destroy completion: {census:?}"
    );
}

/// Scenario 2: a rate step into overload with the serving layer on — the
/// admission ceiling sheds and coalesces the burst at the sink, and every
/// shed query still ends in a terminal status.
#[test]
fn soak_rate_step_overload() {
    let mut cfg = ServiceConfig::new(
        soak_scenario(120, 0.0),
        RateSchedule::new(vec![(0.0, 0.4), (300.0, 6.0), (400.0, 0.4)]),
    );
    cfg.k = 8;
    cfg.diknn = DiknnConfig {
        serving: ServingConfig {
            max_in_flight: 3,
            ..ServingConfig::enabled()
        },
        ..DiknnConfig::default()
    };
    let (injected, census) = soak(cfg, 72);
    assert!(
        injected > 700,
        "the step should add ~560 arrivals: {injected}"
    );
    let shed = count(&census, QueryStatus::Rejected)
        + count(&census, QueryStatus::Merged)
        + count(&census, QueryStatus::CacheHit);
    assert!(
        shed > 0,
        "a 15x overload step must exercise the serving layer: {census:?}"
    );
    assert!(
        count(&census, QueryStatus::Completed) > 0,
        "steady-state traffic must still complete: {census:?}"
    );
}

/// Scenario 3: a jamming sweep — a mid-field interferer switches on for
/// 200 s in the middle of the run, killing most receptions inside its
/// disc, then clears.
#[test]
fn soak_jam_zone_sweep() {
    let mut cfg = ServiceConfig::new(soak_scenario(110, 0.0), RateSchedule::constant(0.4));
    cfg.k = 8;
    cfg.faults = FaultPlan {
        jam_zones: vec![JamZone {
            region: FaultRegion::Circle {
                center: Point::new(57.5, 57.5),
                radius: 30.0,
            },
            from: SimDuration::from_secs_f64(400.0),
            until: SimDuration::from_secs_f64(600.0),
            loss: 0.85,
        }],
        ..FaultPlan::default()
    };
    let (injected, census) = soak(cfg, 73);
    assert!(injected > 300, "expected ~400 arrivals, got {injected}");
    assert!(
        count(&census, QueryStatus::Completed) as f64 / injected as f64 > 0.4,
        "jamming is localised and temporary; most queries should complete: {census:?}"
    );
}
