//! Property test for the service-mode restore-equivalence law.
//!
//! For a random scenario (size, mobility, churn, spatial index, seed) and a
//! random snapshot instant, the law
//!
//! ```text
//! run(N epochs)  ≡  run(m epochs) + snapshot + restore + run(N - m epochs)
//! ```
//!
//! must hold *bit-exactly*: the interrupted run's flight-recorder trace,
//! metrics and injected-request count equal the uninterrupted run's. The
//! snapshot instant `m` is drawn from the interior of the run, so the
//! suffix always replays real work (arrivals, itineraries, churn events)
//! through the restored state.

use diknn_workloads::{RateSchedule, ScenarioConfig, ServiceConfig, ServiceRun};

use diknn_sim::{FaultPlan, NeighborIndex};
use proptest::prelude::*;

const TOTAL_EPOCHS: u64 = 6;

fn service_cfg(nodes: usize, max_speed: f64, churn: bool, brute: bool) -> ServiceConfig {
    let scenario = ScenarioConfig {
        nodes,
        max_speed,
        duration: 60.0,
        ..ScenarioConfig::default()
    };
    let mut cfg = ServiceConfig::new(scenario, RateSchedule::constant(0.6));
    cfg.epoch_s = 2.0;
    cfg.k = 6;
    if churn {
        // Continuous leave/rejoin with state loss across the whole run.
        cfg.faults = FaultPlan::churning(0.25, 8.0, 3.0, 1.0, 60.0);
    }
    if brute {
        cfg.neighbor_index = NeighborIndex::BruteForce;
    }
    cfg
}

proptest! {
    // Each case runs two full simulations; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn restore_suffix_is_bit_identical(
        seed in 0u64..10_000,
        nodes in 60usize..120,
        mobile in any::<bool>(),
        churn in any::<bool>(),
        brute in any::<bool>(),
        cut in 1u64..TOTAL_EPOCHS,
    ) {
        let cfg = service_cfg(nodes, if mobile { 5.0 } else { 0.0 }, churn, brute);

        let mut full = ServiceRun::new(cfg.clone(), seed);
        full.run_epochs(TOTAL_EPOCHS);

        let mut head = ServiceRun::new(cfg.clone(), seed);
        head.run_epochs(cut);
        let bytes = head.snapshot();
        drop(head);
        let mut tail = ServiceRun::restore(&bytes, cfg).expect("snapshot must restore");
        // Round-trip stability: re-snapshotting the restored run before it
        // moves reproduces the stream byte for byte.
        prop_assert_eq!(&tail.snapshot(), &bytes, "snapshot round-trip must be stable");
        tail.run_epochs(TOTAL_EPOCHS - cut);

        prop_assert_eq!(tail.epoch(), full.epoch());
        prop_assert_eq!(tail.injected(), full.injected());
        prop_assert_eq!(
            tail.trace_fingerprint(),
            full.trace_fingerprint(),
            "trace suffix diverged after restore (seed {}, cut {})",
            seed,
            cut
        );
        prop_assert_eq!(tail.metrics(), full.metrics());
        prop_assert_eq!(tail.outcomes(), full.outcomes());
    }
}
