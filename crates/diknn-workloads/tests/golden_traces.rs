//! Golden-trace regression tests for the flight recorder.
//!
//! Two pinned scenarios (a clean static network and one under scheduled
//! node churn) are run with tracing enabled; the protocol-level view of
//! the trace (`EventTrace::render_protocol`) must match a committed golden
//! file line for line. Any change to protocol event ordering, the trace
//! line format, or simulation determinism shows up as a readable diff.
//!
//! When a change is *intentional*, regenerate the golden files with:
//!
//! ```text
//! DIKNN_REGEN_GOLDEN=1 cargo test -p diknn-workloads --test golden_traces
//! ```
//!
//! and review the diff like any other code change.

use diknn_core::{Diknn, DiknnConfig, KnnProtocol, QueryRequest};
use diknn_geom::Point;
use diknn_sim::{EventTrace, FaultPlan, NodeId, Simulator, TraceConfig};
use diknn_workloads::{invariants, RateSchedule, ScenarioConfig, ServiceConfig, ServiceRun};

const SEED: u64 = 2007;

fn pinned_scenario() -> ScenarioConfig {
    ScenarioConfig {
        nodes: 120,
        max_speed: 0.0,
        duration: 25.0,
        ..ScenarioConfig::default()
    }
}

fn pinned_requests() -> Vec<QueryRequest> {
    vec![
        QueryRequest {
            at: 2.0,
            sink: NodeId(0),
            q: Point::new(57.0, 57.0),
            k: 5,
        },
        QueryRequest {
            at: 6.0,
            sink: NodeId(3),
            q: Point::new(90.0, 25.0),
            k: 8,
        },
    ]
}

/// Run the pinned scenario and return the completed simulation's trace
/// (invariant-checked, so a golden file can never pin a lawless run).
fn run_pinned(fault_plan: Option<FaultPlan>) -> EventTrace {
    let scenario = pinned_scenario();
    let plans = scenario.build(SEED);
    let mut sim_cfg = scenario.sim_config();
    sim_cfg.trace = TraceConfig::enabled();
    if let Some(plan) = fault_plan {
        sim_cfg.faults = plan;
    }
    let mut sim = Simulator::new(
        sim_cfg,
        plans,
        Diknn::new(DiknnConfig::default(), pinned_requests()),
        SEED,
    );
    sim.warm_neighbor_tables();
    sim.run();
    let (mut proto, ctx) = sim.into_parts();
    proto.finish(&ctx);
    invariants::assert_clean(ctx.trace(), proto.outcomes());
    ctx.trace().clone()
}

fn churn_plan() -> FaultPlan {
    FaultPlan::random_crashes(0.15, 1.0, 12.0)
}

/// Four queries issued back to back so several are in flight at once —
/// the pinned concurrent-engine scenario.
fn concurrent_requests() -> Vec<QueryRequest> {
    vec![
        QueryRequest {
            at: 2.0,
            sink: NodeId(0),
            q: Point::new(57.0, 57.0),
            k: 5,
        },
        QueryRequest {
            at: 2.15,
            sink: NodeId(7),
            q: Point::new(90.0, 25.0),
            k: 8,
        },
        QueryRequest {
            at: 2.3,
            sink: NodeId(42),
            q: Point::new(25.0, 90.0),
            k: 6,
        },
        QueryRequest {
            at: 2.45,
            sink: NodeId(88),
            q: Point::new(30.0, 30.0),
            k: 10,
        },
    ]
}

/// Run the pinned 4-query concurrent scenario; returns the trace and the
/// query outcomes (invariant-checked, including the cross-query custody
/// law, before anything is pinned).
fn run_concurrent(fault_plan: Option<FaultPlan>) -> (EventTrace, Vec<diknn_core::QueryOutcome>) {
    let scenario = pinned_scenario();
    let plans = scenario.build(SEED);
    let mut sim_cfg = scenario.sim_config();
    sim_cfg.trace = TraceConfig::enabled();
    if let Some(plan) = fault_plan {
        sim_cfg.faults = plan;
    }
    let mut sim = Simulator::new(
        sim_cfg,
        plans,
        Diknn::new(DiknnConfig::default(), concurrent_requests()),
        SEED,
    );
    sim.warm_neighbor_tables();
    sim.run();
    let (mut proto, ctx) = sim.into_parts();
    proto.finish(&ctx);
    invariants::assert_clean(ctx.trace(), proto.outcomes());
    (ctx.trace().clone(), proto.outcomes().to_vec())
}

/// Assert the pinned concurrent scenario really overlaps queries and that
/// every query reached a terminal status.
fn assert_concurrent_shape(outcomes: &[diknn_core::QueryOutcome]) {
    assert_eq!(outcomes.len(), 4, "all four queries must have outcomes");
    for o in outcomes {
        assert_ne!(
            o.status,
            diknn_core::QueryStatus::Pending,
            "query {} never reached a terminal status",
            o.qid
        );
    }
    let mut in_flight_twice = false;
    for (i, a) in outcomes.iter().enumerate() {
        for b in &outcomes[i + 1..] {
            if let (Some(da), Some(db)) = (a.completed_at, b.completed_at) {
                if a.issued_at < db && b.issued_at < da {
                    in_flight_twice = true;
                }
            }
        }
    }
    assert!(
        in_flight_twice,
        "pinned scenario no longer overlaps queries: {outcomes:?}"
    );
}

/// Compare against (or, under `DIKNN_REGEN_GOLDEN=1`, rewrite) the golden
/// file at `tests/golden/<name>`.
fn assert_matches_golden(name: &str, committed: &str, actual: &str) {
    if std::env::var_os("DIKNN_REGEN_GOLDEN").is_some() {
        let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        return;
    }
    assert_eq!(
        actual, committed,
        "golden trace {name} drifted; if the change is intentional run \
         DIKNN_REGEN_GOLDEN=1 cargo test -p diknn-workloads --test golden_traces \
         and review the diff"
    );
}

#[test]
fn same_seed_traces_are_bit_identical() {
    let a = run_pinned(Some(churn_plan()));
    let b = run_pinned(Some(churn_plan()));
    assert!(!a.is_empty(), "pinned run recorded no events");
    assert_eq!(a.render(), b.render());
}

#[test]
fn static_scenario_matches_golden() {
    let trace = run_pinned(None);
    let rendered = trace.render_protocol();
    assert!(
        rendered.contains("query-issued") && rendered.contains("query-done"),
        "protocol view missing expected events:\n{rendered}"
    );
    assert_matches_golden(
        "static.trace",
        include_str!("golden/static.trace"),
        &rendered,
    );
}

#[test]
fn churn_scenario_matches_golden() {
    let trace = run_pinned(Some(churn_plan()));
    let rendered = trace.render_protocol();
    assert!(
        rendered.contains("crash"),
        "churn run recorded no crashes:\n{rendered}"
    );
    assert_matches_golden("churn.trace", include_str!("golden/churn.trace"), &rendered);
}

#[test]
fn concurrent_static_scenario_matches_golden() {
    let (trace, outcomes) = run_concurrent(None);
    assert_concurrent_shape(&outcomes);
    assert_matches_golden(
        "concurrent_static.trace",
        include_str!("golden/concurrent_static.trace"),
        &trace.render_protocol(),
    );
}

/// The pinned resident-service scenario: continuous churn, streaming
/// arrivals, and a snapshot/restore at the midpoint. The golden file pins
/// the *restored* run's full protocol trace — so it also re-proves, on
/// every CI run, that a restore midway leaves no seam in the history.
fn pinned_service_cfg() -> ServiceConfig {
    let mut cfg = ServiceConfig::new(
        ScenarioConfig {
            nodes: 120,
            max_speed: 0.0,
            duration: 40.0,
            ..ScenarioConfig::default()
        },
        RateSchedule::constant(0.4),
    );
    cfg.epoch_s = 2.0;
    cfg.k = 6;
    cfg.faults = FaultPlan::churning(0.2, 10.0, 4.0, 2.0, 30.0);
    cfg
}

#[test]
fn service_restore_scenario_matches_golden() {
    // 8 epochs, snapshot, restore, 8 more — the pinned midpoint restore.
    let mut head = ServiceRun::new(pinned_service_cfg(), SEED);
    head.run_epochs(8);
    let bytes = head.snapshot();
    drop(head);
    let mut run = ServiceRun::restore(&bytes, pinned_service_cfg()).expect("restore");
    run.run_epochs(8);
    let (proto, ctx) = run.finish();
    invariants::assert_clean(ctx.trace(), proto.outcomes());
    let rendered = ctx.trace().render_protocol();
    assert!(
        rendered.contains("leave") && rendered.contains("rejoin"),
        "pinned service run must exercise churn:\n{rendered}"
    );
    assert!(
        rendered.contains("query-done"),
        "pinned service run must finish queries:\n{rendered}"
    );
    assert_matches_golden(
        "service_restore.trace",
        include_str!("golden/service_restore.trace"),
        &rendered,
    );
}

#[test]
fn concurrent_churn_scenario_matches_golden() {
    let (trace, outcomes) = run_concurrent(Some(churn_plan()));
    assert_eq!(outcomes.len(), 4);
    let rendered = trace.render_protocol();
    assert!(
        rendered.contains("crash"),
        "concurrent churn run recorded no crashes:\n{rendered}"
    );
    assert_matches_golden(
        "concurrent_churn.trace",
        include_str!("golden/concurrent_churn.trace"),
        &rendered,
    );
}
