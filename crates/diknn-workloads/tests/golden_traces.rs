//! Golden-trace regression tests for the flight recorder.
//!
//! Two pinned scenarios (a clean static network and one under scheduled
//! node churn) are run with tracing enabled; the protocol-level view of
//! the trace (`EventTrace::render_protocol`) must match a committed golden
//! file line for line. Any change to protocol event ordering, the trace
//! line format, or simulation determinism shows up as a readable diff.
//!
//! When a change is *intentional*, regenerate the golden files with:
//!
//! ```text
//! DIKNN_REGEN_GOLDEN=1 cargo test -p diknn-workloads --test golden_traces
//! ```
//!
//! and review the diff like any other code change.

use diknn_core::{Diknn, DiknnConfig, KnnProtocol, QueryRequest};
use diknn_geom::Point;
use diknn_sim::{EventTrace, FaultPlan, NodeId, Simulator, TraceConfig};
use diknn_workloads::{invariants, ScenarioConfig};

const SEED: u64 = 2007;

fn pinned_scenario() -> ScenarioConfig {
    ScenarioConfig {
        nodes: 120,
        max_speed: 0.0,
        duration: 25.0,
        ..ScenarioConfig::default()
    }
}

fn pinned_requests() -> Vec<QueryRequest> {
    vec![
        QueryRequest {
            at: 2.0,
            sink: NodeId(0),
            q: Point::new(57.0, 57.0),
            k: 5,
        },
        QueryRequest {
            at: 6.0,
            sink: NodeId(3),
            q: Point::new(90.0, 25.0),
            k: 8,
        },
    ]
}

/// Run the pinned scenario and return the completed simulation's trace
/// (invariant-checked, so a golden file can never pin a lawless run).
fn run_pinned(fault_plan: Option<FaultPlan>) -> EventTrace {
    let scenario = pinned_scenario();
    let plans = scenario.build(SEED);
    let mut sim_cfg = scenario.sim_config();
    sim_cfg.trace = TraceConfig::enabled();
    if let Some(plan) = fault_plan {
        sim_cfg.faults = plan;
    }
    let mut sim = Simulator::new(
        sim_cfg,
        plans,
        Diknn::new(DiknnConfig::default(), pinned_requests()),
        SEED,
    );
    sim.warm_neighbor_tables();
    sim.run();
    let (mut proto, ctx) = sim.into_parts();
    proto.finish(&ctx);
    invariants::assert_clean(ctx.trace(), proto.outcomes());
    ctx.trace().clone()
}

fn churn_plan() -> FaultPlan {
    FaultPlan::random_crashes(0.15, 1.0, 12.0)
}

/// Compare against (or, under `DIKNN_REGEN_GOLDEN=1`, rewrite) the golden
/// file at `tests/golden/<name>`.
fn assert_matches_golden(name: &str, committed: &str, actual: &str) {
    if std::env::var_os("DIKNN_REGEN_GOLDEN").is_some() {
        let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        return;
    }
    assert_eq!(
        actual, committed,
        "golden trace {name} drifted; if the change is intentional run \
         DIKNN_REGEN_GOLDEN=1 cargo test -p diknn-workloads --test golden_traces \
         and review the diff"
    );
}

#[test]
fn same_seed_traces_are_bit_identical() {
    let a = run_pinned(Some(churn_plan()));
    let b = run_pinned(Some(churn_plan()));
    assert!(!a.is_empty(), "pinned run recorded no events");
    assert_eq!(a.render(), b.render());
}

#[test]
fn static_scenario_matches_golden() {
    let trace = run_pinned(None);
    let rendered = trace.render_protocol();
    assert!(
        rendered.contains("query-issued") && rendered.contains("query-done"),
        "protocol view missing expected events:\n{rendered}"
    );
    assert_matches_golden(
        "static.trace",
        include_str!("golden/static.trace"),
        &rendered,
    );
}

#[test]
fn churn_scenario_matches_golden() {
    let trace = run_pinned(Some(churn_plan()));
    let rendered = trace.render_protocol();
    assert!(
        rendered.contains("crash"),
        "churn run recorded no crashes:\n{rendered}"
    );
    assert_matches_golden("churn.trace", include_str!("golden/churn.trace"), &rendered);
}
