//! Same-seed determinism regression tests.
//!
//! The whole experiment pipeline (placement, mobility, workload generation,
//! MAC backoff, protocol logic) must be a pure function of the seed: two
//! runs with the same seed must produce bit-identical outcomes. This is the
//! property the determinism lint (`cargo xtask lint`, clippy
//! `disallowed-types`) exists to protect; this test catches what static
//! analysis cannot, e.g. an exempted hash container that starts being
//! iterated, or address-dependent ordering sneaking into a sort key.
//!
//! f64 comparisons use `to_bits` so that `-0.0 != 0.0` and NaN payloads
//! would be caught too: "close enough" is not determinism.

use diknn_baselines::PeerTreeConfig;
use diknn_core::{DiknnConfig, QueryOutcome};
use diknn_workloads::{
    run_protocol_once, Experiment, ProtocolKind, ScenarioConfig, WorkloadConfig,
};

/// A mobile scenario: movement exercises the RNG-driven waypoint picks,
/// neighbor-table churn, and MAC retransmissions.
fn scenario() -> ScenarioConfig {
    ScenarioConfig {
        nodes: 150,
        duration: 25.0,
        max_speed: 8.0,
        ..ScenarioConfig::default()
    }
}

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        k: 12,
        first_at: 2.0,
        last_at: 12.0,
        mean_interval: 3.0,
        ..WorkloadConfig::default()
    }
}

/// Render every field of an outcome with exact bit patterns for floats.
fn fingerprint(outcomes: &[QueryOutcome], energy_j: f64) -> String {
    let mut s = format!("energy={:016x}\n", energy_j.to_bits());
    for o in outcomes {
        s.push_str(&format!(
            "qid={} sink={:?} q=({:016x},{:016x}) k={} issued={:016x} \
             completed={:?} answer={:?} boundary={:016x} final={:016x} \
             hops={} parts={}/{} explored={}\n",
            o.qid,
            o.sink,
            o.q.x.to_bits(),
            o.q.y.to_bits(),
            o.k,
            o.issued_at.as_secs_f64().to_bits(),
            o.completed_at.map(|t| t.as_secs_f64().to_bits()),
            o.answer,
            o.boundary_radius.to_bits(),
            o.final_radius.to_bits(),
            o.routing_hops,
            o.parts_expected,
            o.parts_returned,
            o.explored_nodes,
        ));
    }
    s
}

fn double_run(kind: ProtocolKind, seed: u64) {
    let name = kind.name();
    let scenario = scenario();
    let requests = diknn_workloads::workload::generate(&scenario, &workload(), seed);
    assert!(
        !requests.is_empty(),
        "{name}: workload generated no queries"
    );
    let (o1, e1) = run_protocol_once(kind.clone(), &scenario, requests.clone(), seed);
    let (o2, e2) = run_protocol_once(kind, &scenario, requests, seed);
    assert!(
        o1.iter().any(|o| o.completed_at.is_some()),
        "{name}: no query completed, run is vacuous"
    );
    let (f1, f2) = (fingerprint(&o1, e1), fingerprint(&o2, e2));
    assert!(
        f1 == f2,
        "{name}: same-seed runs diverged\nrun 1:\n{f1}\nrun 2:\n{f2}"
    );
}

#[test]
fn diknn_same_seed_runs_are_bit_identical() {
    double_run(ProtocolKind::Diknn(DiknnConfig::default()), 11);
}

#[test]
fn peertree_same_seed_runs_are_bit_identical() {
    double_run(ProtocolKind::PeerTree(PeerTreeConfig::default()), 11);
}

#[test]
fn full_experiment_metrics_are_deterministic_across_seeds() {
    // The aggregated driver path too, on a couple of seeds: RunMetrics
    // derives PartialEq over raw f64s, so equality is exact.
    let exp = Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        scenario(),
        workload(),
    );
    for seed in [5u64, 6] {
        assert_eq!(exp.run_once(seed), exp.run_once(seed), "seed {seed}");
    }
}
