//! Same-seed determinism regression tests.
//!
//! The whole experiment pipeline (placement, mobility, workload generation,
//! MAC backoff, protocol logic) must be a pure function of the seed: two
//! runs with the same seed must produce bit-identical outcomes. This is the
//! property the determinism lint (`cargo xtask lint`, clippy
//! `disallowed-types`) exists to protect; this test catches what static
//! analysis cannot, e.g. an exempted hash container that starts being
//! iterated, or address-dependent ordering sneaking into a sort key.
//!
//! f64 comparisons use `to_bits` so that `-0.0 != 0.0` and NaN payloads
//! would be caught too: "close enough" is not determinism.

use diknn_baselines::PeerTreeConfig;
use diknn_core::{DiknnConfig, QueryOutcome, QueryStatus};
use diknn_workloads::{
    fault_sweep, run_protocol_once, run_protocol_once_faulted, Experiment, ProtocolKind,
    ScenarioConfig, WorkloadConfig,
};

/// A mobile scenario: movement exercises the RNG-driven waypoint picks,
/// neighbor-table churn, and MAC retransmissions.
fn scenario() -> ScenarioConfig {
    ScenarioConfig {
        nodes: 150,
        duration: 25.0,
        max_speed: 8.0,
        ..ScenarioConfig::default()
    }
}

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        k: 12,
        first_at: 2.0,
        last_at: 12.0,
        mean_interval: 3.0,
        ..WorkloadConfig::default()
    }
}

/// Render every field of an outcome with exact bit patterns for floats.
fn fingerprint(outcomes: &[QueryOutcome], energy_j: f64) -> String {
    let mut s = format!("energy={:016x}\n", energy_j.to_bits());
    for o in outcomes {
        s.push_str(&format!(
            "qid={} sink={:?} q=({:016x},{:016x}) k={} issued={:016x} \
             completed={:?} answer={:?} boundary={:016x} final={:016x} \
             hops={} parts={}/{} explored={} status={}\n",
            o.qid,
            o.sink,
            o.q.x.to_bits(),
            o.q.y.to_bits(),
            o.k,
            o.issued_at.as_secs_f64().to_bits(),
            o.completed_at.map(|t| t.as_secs_f64().to_bits()),
            o.answer,
            o.boundary_radius.to_bits(),
            o.final_radius.to_bits(),
            o.routing_hops,
            o.parts_expected,
            o.parts_returned,
            o.explored_nodes,
            o.status.label(),
        ));
    }
    s
}

fn double_run(kind: ProtocolKind, seed: u64) {
    let name = kind.name();
    let scenario = scenario();
    let requests = diknn_workloads::workload::generate(&scenario, &workload(), seed);
    assert!(
        !requests.is_empty(),
        "{name}: workload generated no queries"
    );
    let (o1, e1) = run_protocol_once(kind.clone(), &scenario, requests.clone(), seed);
    let (o2, e2) = run_protocol_once(kind, &scenario, requests, seed);
    assert!(
        o1.iter().any(|o| o.completed_at.is_some()),
        "{name}: no query completed, run is vacuous"
    );
    let (f1, f2) = (fingerprint(&o1, e1), fingerprint(&o2, e2));
    assert!(
        f1 == f2,
        "{name}: same-seed runs diverged\nrun 1:\n{f1}\nrun 2:\n{f2}"
    );
}

#[test]
fn diknn_same_seed_runs_are_bit_identical() {
    double_run(ProtocolKind::Diknn(DiknnConfig::default()), 11);
}

/// Fail-stop means *silent*: once a node crashes (and does not recover),
/// no frame it sourced may be delivered anywhere — beyond the tiny window
/// for frames already on the air at crash time.
mod crashed_silence {
    use super::*;
    use diknn_core::{Diknn, DiknnMsg};
    use diknn_sim::{CrashSpec, Ctx, NodeId, Protocol, SimDuration, SimTime, Simulator};
    use proptest::prelude::*;

    struct Recorder {
        inner: Diknn,
        deliveries: Vec<(SimTime, NodeId)>,
    }

    impl Protocol for Recorder {
        type Msg = DiknnMsg;
        fn on_start(&mut self, ctx: &mut Ctx<DiknnMsg>) {
            self.inner.on_start(ctx)
        }
        fn on_message(
            &mut self,
            at: NodeId,
            from: NodeId,
            msg: &DiknnMsg,
            ctx: &mut Ctx<DiknnMsg>,
        ) {
            self.deliveries.push((ctx.now(), from));
            self.inner.on_message(at, from, msg, ctx)
        }
        fn on_timer(&mut self, at: NodeId, key: u64, ctx: &mut Ctx<DiknnMsg>) {
            self.inner.on_timer(at, key, ctx)
        }
        fn on_send_failed(
            &mut self,
            at: NodeId,
            to: NodeId,
            msg: &DiknnMsg,
            ctx: &mut Ctx<DiknnMsg>,
        ) {
            self.inner.on_send_failed(at, to, msg, ctx)
        }
    }

    proptest! {
        // Each case is a full (small) simulation; keep the count low.
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn crashed_node_is_never_a_tx_source(
            node in 0u32..80,
            crash_at in 2.0..10.0f64,
            seed in 0u64..1_000,
        ) {
            let scenario = ScenarioConfig {
                nodes: 80,
                duration: 14.0,
                max_speed: 4.0,
                ..ScenarioConfig::default()
            };
            let wl = WorkloadConfig {
                k: 8,
                first_at: 1.0,
                last_at: 8.0,
                mean_interval: 2.0,
                ..WorkloadConfig::default()
            };
            let requests = diknn_workloads::workload::generate(&scenario, &wl, seed);
            let plans = scenario.build(seed);
            let mut cfg = scenario.sim_config();
            cfg.faults.crashes = vec![CrashSpec {
                node,
                at: SimDuration::from_secs_f64(crash_at),
                recover_after: None,
            }];
            let recorder = Recorder {
                inner: Diknn::new(DiknnConfig::default(), requests),
                deliveries: Vec::new(),
            };
            let mut sim = Simulator::new(cfg, plans, recorder, seed);
            sim.warm_neighbor_tables();
            sim.run();
            let (recorder, _ctx) = sim.into_parts();
            // Frames transmitted just before the crash may still land.
            let cutoff = crash_at + 0.05;
            for &(t, from) in &recorder.deliveries {
                prop_assert!(
                    from.0 != node || t.as_secs_f64() <= cutoff,
                    "delivery sourced by crashed node {node} at {:.3}s (crash at {crash_at:.3}s)",
                    t.as_secs_f64(),
                );
            }
        }
    }
}

#[test]
fn peertree_same_seed_runs_are_bit_identical() {
    double_run(ProtocolKind::PeerTree(PeerTreeConfig::default()), 11);
}

#[test]
fn faulted_diknn_same_seed_runs_are_bit_identical() {
    // Crashes + Gilbert–Elliott bursty loss draw from the dedicated fault
    // RNG stream; the recovery machinery (watchdog re-issues, sink retries)
    // must stay a pure function of the seed like everything else.
    let scenario = scenario();
    let plan = fault_sweep::churn_and_bursts(scenario.duration);
    let requests = diknn_workloads::workload::generate(&scenario, &workload(), 11);
    let run = || {
        run_protocol_once_faulted(
            ProtocolKind::Diknn(DiknnConfig::default()),
            &scenario,
            requests.clone(),
            11,
            Some(plan.clone()),
        )
    };
    let (o1, e1) = run();
    let (o2, e2) = run();
    assert!(!o1.is_empty(), "faulted run produced no outcomes");
    assert!(
        o1.iter().all(|o| o.status != QueryStatus::Pending),
        "finish() must classify every query: {o1:?}"
    );
    let (f1, f2) = (fingerprint(&o1, e1), fingerprint(&o2, e2));
    assert!(
        f1 == f2,
        "faulted same-seed runs diverged\nrun 1:\n{f1}\nrun 2:\n{f2}"
    );
    // The aggregated driver path too (covers SimStats fault counters).
    let mut exp = Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        scenario,
        workload(),
    );
    exp.fault_plan = Some(plan);
    assert_eq!(exp.run_once(11), exp.run_once(11));
}

#[test]
fn full_experiment_metrics_are_deterministic_across_seeds() {
    // The aggregated driver path too, on a couple of seeds: RunMetrics
    // derives PartialEq over raw f64s, so equality is exact.
    let exp = Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        scenario(),
        workload(),
    );
    for seed in [5u64, 6] {
        assert_eq!(exp.run_once(seed), exp.run_once(seed), "seed {seed}");
    }
}
