//! Cross-crate integration: all four protocols driven through the workload
//! harness on identical scenarios, with the paper's qualitative orderings
//! asserted.

use diknn_repro::prelude::*;

fn scenario(speed: f64) -> ScenarioConfig {
    ScenarioConfig {
        nodes: 200,
        max_speed: speed,
        duration: 45.0,
        ..ScenarioConfig::default()
    }
}

fn workload(k: usize) -> WorkloadConfig {
    WorkloadConfig {
        k,
        first_at: 2.0,
        last_at: 25.0,
        ..WorkloadConfig::default()
    }
}

#[test]
fn all_protocols_complete_queries_on_the_same_scenario() {
    for proto in [
        ProtocolKind::Diknn(DiknnConfig::default()),
        ProtocolKind::Kpt(KptConfig::default()),
        ProtocolKind::PeerTree(PeerTreeConfig::default()),
        ProtocolKind::Flood(FloodConfig::default()),
    ] {
        let name = proto.name();
        let agg = Experiment::new(proto, scenario(10.0), workload(20)).run(1, 11);
        assert!(
            agg.completion_rate.mean >= 0.7,
            "{name}: completion {:.2}",
            agg.completion_rate.mean
        );
        assert!(
            agg.post_accuracy.mean > 0.3,
            "{name}: accuracy {:.3}",
            agg.post_accuracy.mean
        );
        assert!(agg.energy_j.mean > 0.0, "{name}: no energy recorded");
    }
}

#[test]
fn diknn_beats_kpt_on_latency() {
    let diknn = Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        scenario(10.0),
        workload(40),
    )
    .run(2, 21);
    let kpt = Experiment::new(
        ProtocolKind::Kpt(KptConfig::default()),
        scenario(10.0),
        workload(40),
    )
    .run(2, 21);
    assert!(
        diknn.latency_s.mean < kpt.latency_s.mean,
        "DIKNN {:.2}s should beat KPT {:.2}s",
        diknn.latency_s.mean,
        kpt.latency_s.mean
    );
}

#[test]
fn diknn_has_highest_accuracy_under_mobility() {
    let sc = scenario(20.0);
    let wl = workload(40);
    let diknn =
        Experiment::new(ProtocolKind::Diknn(DiknnConfig::default()), sc.clone(), wl).run(2, 31);
    let kpt = Experiment::new(ProtocolKind::Kpt(KptConfig::default()), sc.clone(), wl).run(2, 31);
    let pt = Experiment::new(ProtocolKind::PeerTree(PeerTreeConfig::default()), sc, wl).run(2, 31);
    assert!(
        diknn.pre_accuracy.mean > kpt.pre_accuracy.mean,
        "DIKNN {:.3} !> KPT {:.3}",
        diknn.pre_accuracy.mean,
        kpt.pre_accuracy.mean
    );
    assert!(
        diknn.pre_accuracy.mean > pt.pre_accuracy.mean + 0.15,
        "DIKNN {:.3} !>> PeerTree {:.3}",
        diknn.pre_accuracy.mean,
        pt.pre_accuracy.mean
    );
}

#[test]
fn peertree_pays_maintenance_energy() {
    let sc = scenario(10.0);
    let wl = workload(20);
    let diknn =
        Experiment::new(ProtocolKind::Diknn(DiknnConfig::default()), sc.clone(), wl).run(1, 41);
    let pt = Experiment::new(ProtocolKind::PeerTree(PeerTreeConfig::default()), sc, wl).run(1, 41);
    assert!(
        pt.energy_j.mean > diknn.energy_j.mean,
        "PeerTree {:.2}J should exceed DIKNN {:.2}J",
        pt.energy_j.mean,
        diknn.energy_j.mean
    );
}

#[test]
fn experiments_deterministic_across_protocols() {
    for proto in [
        ProtocolKind::Diknn(DiknnConfig::default()),
        ProtocolKind::Kpt(KptConfig::default()),
        ProtocolKind::PeerTree(PeerTreeConfig::default()),
        ProtocolKind::Flood(FloodConfig::default()),
    ] {
        let name = proto.name();
        let a = Experiment::new(proto.clone(), scenario(10.0), workload(10)).run_once(5);
        let b = Experiment::new(proto, scenario(10.0), workload(10)).run_once(5);
        assert_eq!(a, b, "{name}: nondeterministic run");
    }
}
