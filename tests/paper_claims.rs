//! The paper's headline quantitative claims, asserted at reduced scale
//! (fewer seeds and shorter runs than the evaluation binaries, so the suite
//! stays fast — the `fig8`/`fig9` binaries are the full-scale versions).

use diknn_repro::core::itinerary::{coverage_worst_distance, total_length};
use diknn_repro::core::{knnb, kpt_conservative_radius, HopRecord, ItinerarySpec};
use diknn_repro::prelude::*;

/// §4.2: "radius lengths returned by KNNB are generally 1/√(kπ) of the
/// previous work KPT under the same level of accuracy."
#[test]
fn knnb_radius_ratio_tracks_paper_formula() {
    let r: f64 = 20.0;
    let density: f64 = 200.0 / (115.0 * 115.0);
    let q = Point::new(100.0, 57.0);
    let list: Vec<HopRecord> = (0..6)
        .map(|i| HopRecord {
            loc: Point::new(q.x - (6 - i) as f64 * 15.0, q.y),
            enc: (density * r * 15.0).round() as u32,
        })
        .collect();
    for k in [20usize, 40, 100] {
        let ratio = knnb(&list, q, r, k).radius / kpt_conservative_radius(k, 15.0);
        let paper = 1.0 / (k as f64 * std::f64::consts::PI).sqrt();
        // Same order of magnitude (within 3× either way).
        assert!(
            ratio < 3.0 * paper && ratio > paper / 3.0,
            "k={k}: ratio {ratio:.4} vs paper {paper:.4}"
        );
    }
}

/// §3.3: w = √3r/2 covers the boundary; substantially wider widths leave
/// radio-range holes, substantially narrower ones inflate the itinerary.
#[test]
fn recommended_width_is_a_good_tradeoff() {
    let r = 20.0;
    let rec = ItinerarySpec::recommended_width(r);
    let covered = |w: f64| {
        let spec = ItinerarySpec::new(Point::ORIGIN, 55.0, 8, w);
        coverage_worst_distance(&spec, 1500) <= r
    };
    let length = |w: f64| total_length(&ItinerarySpec::new(Point::ORIGIN, 55.0, 8, w));
    assert!(covered(rec), "recommended width must cover");
    assert!(!covered(3.0 * r), "3r spacing must leave holes");
    assert!(
        length(rec / 2.0) > 1.5 * length(rec),
        "halving the width should significantly lengthen the itinerary"
    );
}

/// §5 headline: "outperforms the second runner with up to 50% saving in
/// energy consumption and up to 40% reduction in query response time,
/// while rendering the same level of query result accuracy."
///
/// Reduced-scale check of the latency half plus the accuracy floor.
#[test]
fn headline_latency_and_accuracy_vs_kpt() {
    let scenario = ScenarioConfig {
        duration: 50.0,
        ..ScenarioConfig::default()
    };
    let wl = WorkloadConfig {
        k: 40,
        last_at: 30.0,
        ..WorkloadConfig::default()
    };
    let diknn = Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        scenario.clone(),
        wl,
    )
    .run(2, 1234);
    let kpt = Experiment::new(ProtocolKind::Kpt(KptConfig::default()), scenario, wl).run(2, 1234);
    let reduction = 1.0 - diknn.latency_s.mean / kpt.latency_s.mean;
    assert!(
        reduction > 0.15,
        "latency reduction vs KPT only {:.0}% (DIKNN {:.2}s, KPT {:.2}s)",
        reduction * 100.0,
        diknn.latency_s.mean,
        kpt.latency_s.mean
    );
    assert!(
        diknn.pre_accuracy.mean >= kpt.pre_accuracy.mean - 0.02,
        "accuracy must be at least KPT's level: {:.3} vs {:.3}",
        diknn.pre_accuracy.mean,
        kpt.pre_accuracy.mean
    );
    assert!(
        diknn.pre_accuracy.mean > 0.8,
        "DIKNN pre-accuracy {:.3} too low at k=40/µ=10",
        diknn.pre_accuracy.mean
    );
}

/// §5.4: "DIKNN has stable performance under various mobility conditions"
/// while Peer-tree accuracy "degrades dramatically".
#[test]
fn mobility_stability_contrast() {
    let wl = WorkloadConfig {
        k: 20,
        last_at: 25.0,
        ..WorkloadConfig::default()
    };
    let run = |proto: ProtocolKind, speed: f64| {
        Experiment::new(
            proto,
            ScenarioConfig {
                max_speed: speed,
                duration: 45.0,
                ..ScenarioConfig::default()
            },
            wl,
        )
        .run(2, 777)
    };
    let diknn_slow = run(ProtocolKind::Diknn(DiknnConfig::default()), 5.0);
    let diknn_fast = run(ProtocolKind::Diknn(DiknnConfig::default()), 30.0);
    let pt_slow = run(ProtocolKind::PeerTree(PeerTreeConfig::default()), 5.0);
    let pt_fast = run(ProtocolKind::PeerTree(PeerTreeConfig::default()), 30.0);

    let diknn_drop = diknn_slow.pre_accuracy.mean - diknn_fast.pre_accuracy.mean;
    let pt_drop = pt_slow.pre_accuracy.mean - pt_fast.pre_accuracy.mean;
    assert!(
        pt_drop > diknn_drop + 0.1,
        "Peer-tree should degrade much more: PT drop {:.3} vs DIKNN drop {:.3}",
        pt_drop,
        diknn_drop
    );
    assert!(
        diknn_fast.pre_accuracy.mean > 0.6,
        "DIKNN at 30 m/s fell to {:.3}",
        diknn_fast.pre_accuracy.mean
    );
}
