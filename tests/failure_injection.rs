//! Failure injection: lossy channels, sparse/partitioned networks, extreme
//! parameters. Protocols must degrade gracefully — reduced accuracy or
//! completion is expected; hangs, panics, or nonsense metrics are not.

use diknn_repro::prelude::*;
use diknn_repro::sim::MacMode;

fn base_scenario() -> ScenarioConfig {
    ScenarioConfig {
        nodes: 150,
        max_speed: 10.0,
        duration: 40.0,
        ..ScenarioConfig::default()
    }
}

fn wl(k: usize) -> WorkloadConfig {
    WorkloadConfig {
        k,
        first_at: 2.0,
        last_at: 20.0,
        ..WorkloadConfig::default()
    }
}

fn with_loss(rate: f64) -> Experiment {
    let mut exp = Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        base_scenario(),
        wl(15),
    );
    // fn-pointer tweaks cannot capture `rate`, so dispatch to constants.
    exp.sim_tweak = if rate <= 0.1 {
        Some(|c: &mut SimConfig| c.loss_rate = 0.1)
    } else if rate <= 0.3 {
        Some(|c: &mut SimConfig| c.loss_rate = 0.3)
    } else {
        Some(|c: &mut SimConfig| c.loss_rate = 0.5)
    };
    exp
}

#[test]
fn diknn_degrades_gracefully_under_packet_loss() {
    let clean = Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        base_scenario(),
        wl(15),
    )
    .run(1, 3);
    let light = with_loss(0.1).run(1, 3);
    let heavy = with_loss(0.5).run(1, 3);
    // No panic and sane metrics is the main claim; accuracy must not
    // *improve* under heavy loss.
    assert!(clean.post_accuracy.mean >= heavy.post_accuracy.mean - 0.05);
    assert!(light.completion_rate.mean > 0.0);
    for agg in [&clean, &light, &heavy] {
        assert!(agg.energy_j.mean.is_finite());
        assert!(agg.pre_accuracy.mean >= 0.0 && agg.pre_accuracy.mean <= 1.0);
    }
}

#[test]
fn sparse_network_terminates_for_every_protocol() {
    // Node degree ~4: frequent partitions; queries may fail but runs must
    // finish with sane metrics.
    let scenario = ScenarioConfig {
        nodes: 120,
        duration: 40.0,
        max_speed: 10.0,
        ..ScenarioConfig::default()
    }
    .with_node_degree(4.0, 20.0);
    for proto in [
        ProtocolKind::Diknn(DiknnConfig::default()),
        ProtocolKind::Kpt(KptConfig::default()),
        ProtocolKind::PeerTree(PeerTreeConfig::default()),
        ProtocolKind::Flood(FloodConfig::default()),
    ] {
        let name = proto.name();
        let m = Experiment::new(proto, scenario.clone(), wl(10)).run_once(7);
        assert!(m.queries >= 1, "{name}: no queries issued");
        assert!(m.energy_j.is_finite(), "{name}: bad energy");
    }
}

#[test]
fn extreme_k_values_work() {
    // k = 1 and k close to the population.
    for k in [1usize, 120] {
        let m = Experiment::new(
            ProtocolKind::Diknn(DiknnConfig::default()),
            base_scenario(),
            wl(k),
        )
        .run_once(9);
        assert!(m.completed >= 1, "k={k}: nothing completed ({m:?})");
        assert!(
            m.post_accuracy > 0.2,
            "k={k}: accuracy collapsed ({:.3})",
            m.post_accuracy
        );
    }
}

#[test]
fn contention_free_mac_improves_or_matches_accuracy() {
    let contended = Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        base_scenario(),
        wl(30),
    )
    .run(3, 13);
    let mut cfp = Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        base_scenario(),
        wl(30),
    );
    cfp.sim_tweak = Some(|c: &mut SimConfig| c.mac = MacMode::ContentionFree);
    let cfp = cfp.run(3, 13);
    // CFP is not a paired variance reduction (the event interleaving
    // changes completely), so compare means with slack.
    assert!(
        cfp.post_accuracy.mean >= contended.post_accuracy.mean - 0.06,
        "CFP {:.3} should not be clearly worse than contention {:.3}",
        cfp.post_accuracy.mean,
        contended.post_accuracy.mean
    );
}

#[test]
fn very_high_mobility_does_not_break_diknn() {
    let scenario = ScenarioConfig {
        max_speed: 40.0, // beyond the paper's range
        ..base_scenario()
    };
    let m = Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        scenario,
        wl(20),
    )
    .run_once(17);
    assert!(m.completed >= 1, "nothing completed at 40 m/s");
    assert!(m.post_accuracy > 0.2, "accuracy {:.3}", m.post_accuracy);
}

#[test]
fn single_node_network_answers_trivially() {
    // Degenerate: the sink is the only node; it is its own home node and
    // there are no neighbours to find.
    let scenario = ScenarioConfig {
        nodes: 1,
        max_speed: 0.0,
        duration: 20.0,
        ..ScenarioConfig::default()
    };
    let requests = vec![QueryRequest {
        at: 1.0,
        sink: NodeId(0),
        q: Point::new(50.0, 50.0),
        k: 3,
    }];
    let plans = scenario.build(1);
    let mut sim = Simulator::new(
        scenario.sim_config(),
        plans,
        Diknn::new(DiknnConfig::default(), requests),
        1,
    );
    sim.run();
    // Must terminate; the outcome may be empty (no data nodes besides the
    // sink itself replying to its own probes is fine either way).
    let o = &sim.protocol().outcomes()[0];
    assert!(o.answer.len() <= 3);
}
